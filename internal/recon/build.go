package recon

import (
	"sort"

	"refrecon/internal/blocking"
	"refrecon/internal/depgraph"
	"refrecon/internal/emailaddr"
	"refrecon/internal/names"
	"refrecon/internal/obs"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
	"refrecon/internal/tokenizer"
)

// attrCompare declares one comparable attribute pair (§3.1: values "of the
// same attribute, or according to the domain knowledge of related
// attributes, such as a name and an email").
type attrCompare struct {
	attrA, attrB string
	evidence     string
	// swap is set when Compare expects (attrB, attrA) argument order
	// (the name-vs-email comparator takes the name first).
	swap bool
}

// atomicComparisons returns the comparable attribute pairs for a class at
// an evidence level.
func atomicComparisons(class string, level EvidenceLevel) []attrCompare {
	switch class {
	case schema.ClassPerson:
		cmp := []attrCompare{
			{schema.AttrName, schema.AttrName, simfn.EvName, false},
			{schema.AttrEmail, schema.AttrEmail, simfn.EvEmail, false},
		}
		if level >= EvidenceNameEmail {
			cmp = append(cmp,
				attrCompare{schema.AttrName, schema.AttrEmail, simfn.EvNameEmail, false},
				attrCompare{schema.AttrEmail, schema.AttrName, simfn.EvNameEmail, true},
			)
		}
		return cmp
	case schema.ClassArticle:
		return []attrCompare{
			{schema.AttrTitle, schema.AttrTitle, simfn.EvTitle, false},
			{schema.AttrYear, schema.AttrYear, simfn.EvYear, false},
			{schema.AttrPages, schema.AttrPages, simfn.EvPages, false},
		}
	case schema.ClassVenue:
		return []attrCompare{
			{schema.AttrName, schema.AttrName, simfn.EvVenueName, false},
			{schema.AttrYear, schema.AttrYear, simfn.EvYear, false},
			{schema.AttrLocation, schema.AttrLocation, simfn.EvLocation, false},
		}
	default:
		return nil
	}
}

// genericComparisons derives same-attribute comparisons for classes the
// built-in tables don't know, so custom schemas (product catalogs, ...)
// reconcile with the generic string comparator and the srvGeneric
// averaging function.
func genericComparisons(c *schema.Class) []attrCompare {
	var out []attrCompare
	for _, a := range c.AtomicAttrs() {
		out = append(out, attrCompare{a.Name, a.Name, "g:" + a.Name, false})
	}
	return out
}

// elemPrefix namespaces value element keys per attribute domain so that the
// same string in different attributes is a different element.
func elemPrefix(attr string) string {
	switch attr {
	case schema.AttrName:
		return "n:"
	case schema.AttrEmail:
		return "e:"
	case schema.AttrTitle:
		return "t:"
	case schema.AttrYear:
		return "y:"
	case schema.AttrPages:
		return "p:"
	case schema.AttrLocation:
		return "l:"
	default:
		return "x:" + attr + ":"
	}
}

// elemKey returns the namespaced, normalized element key of one raw
// attribute value, memoized per (attribute, raw value).
func (b *builder) elemKey(attr, raw string) string {
	m := b.elems[attr]
	if m == nil {
		m = make(map[string]string)
		b.elems[attr] = m
	}
	if e, ok := m[raw]; ok {
		return e
	}
	e := elemPrefix(attr) + tokenizer.Normalize(raw)
	m[raw] = e
	return e
}

// builder constructs the dependency graph for one dataset. It supports
// incremental operation: incorporate may be called repeatedly with batches
// of new references (the paper's §7 future-work direction), each call
// extending the graph with the new candidate pairs and their dependencies.
type builder struct {
	store *reference.Store
	sch   *schema.Schema
	cfg   Config
	lib   *simfn.Library
	g     *depgraph.Graph

	// indexes holds the per-class blocking indexes, kept across
	// incremental batches.
	indexes map[string]*blocking.Index
	// seeds collects RefPair nodes grouped by class rank so the engine
	// evaluates dependees before dependents (§3.2).
	seeds map[int][]*depgraph.Node
	// fresh accumulates the RefPair nodes created since the last drain;
	// association wiring and engine seeding work off it.
	fresh []*depgraph.Node
	// removed remembers pairs pruned for lack of evidence so they are not
	// rebuilt during the association pass, mapped to the batch ordinal
	// that pruned them. Within one batch the tombstone is final; an
	// association-induced request from a later batch may rebuild the pair
	// (see ensureRefPair).
	removed map[uint64]int
	// batch is the 1-based ordinal of the incorporate call in progress.
	batch int

	// caches of parsed attribute values, keyed by reference id.
	parsedNames  map[reference.ID][]names.Name
	parsedEmails map[reference.ID][]emailaddr.Address
	// cmpTables caches comparisonsFor per class (fixed for the builder's
	// lifetime); elems caches the prefixed, normalized element key of each
	// raw attribute value (attr -> raw -> element key) — values repeat
	// across candidate pairs, so normalization runs once per distinct
	// value instead of once per pair. simScratch backs scoreVals.
	cmpTables  map[string][]attrCompare
	elems      map[string]map[string]string
	simScratch []float64

	candidatePairs int
	skippedBuckets int
	// fedPairs / fedSkipped are the watermarks of what feedCounters has
	// already reported, so incremental batches report deltas, not totals.
	fedPairs   int
	fedSkipped int
}

func newBuilder(store *reference.Store, sch *schema.Schema, cfg Config) *builder {
	b := &builder{
		store:        store,
		sch:          sch,
		cfg:          cfg,
		lib:          simfn.NewLibrary(),
		g:            depgraph.New(),
		indexes:      make(map[string]*blocking.Index),
		seeds:        make(map[int][]*depgraph.Node),
		removed:      make(map[uint64]int),
		parsedNames:  make(map[reference.ID][]names.Name),
		parsedEmails: make(map[reference.ID][]emailaddr.Address),
		cmpTables:    make(map[string][]attrCompare),
		elems:        make(map[string]map[string]string),
	}
	if cfg.Obs != nil {
		b.lib.SetCounters(cfg.Obs.Counters)
	}
	return b
}

// feedCounters reports the construction-phase counters — candidate pairs
// emitted, cap-skipped buckets, blocking-index size, largest bucket —
// into the observer's counter set. Safe with a nil set; incremental
// sessions call it once per batch and it adds only the batch's delta.
func (b *builder) feedCounters(c *obs.Counters) {
	if c == nil {
		return
	}
	c.BlockingCandidates.Add(int64(b.candidatePairs - b.fedPairs))
	b.fedPairs = b.candidatePairs
	c.SkippedBuckets.Add(int64(b.skippedBuckets - b.fedSkipped))
	b.fedSkipped = b.skippedBuckets
	keys, maxBucket := 0, 0
	for _, idx := range b.indexes {
		keys += idx.Keys()
		if m := idx.MaxBucket(); m > maxBucket {
			maxBucket = m
		}
	}
	obs.UpdateMax(&c.BlockingKeys, int64(keys))
	obs.UpdateMax(&c.MaxBucket, int64(maxBucket))
}

// build runs the two construction passes of §3.1 plus constraint seeding
// over the whole store and returns the graph and the seed order.
func (b *builder) build() (*depgraph.Graph, []*depgraph.Node) {
	b.incorporate(b.store.All())
	return b.g, b.seedOrder()
}

// incorporate extends the graph with a batch of new references: library
// statistics, blocking keys, candidate pairs involving the new references,
// association dependencies, and constraints. It returns the RefPair nodes
// created by this batch in seed (rank) order.
func (b *builder) incorporate(newRefs []*reference.Reference) []*depgraph.Node {
	b.batch++
	for _, r := range newRefs {
		for _, t := range r.Atomic(schema.AttrTitle) {
			b.lib.Titles.Add(t)
		}
		switch r.Class {
		case schema.ClassVenue:
			for _, v := range r.Atomic(schema.AttrName) {
				b.lib.Venues.Add(v)
			}
		case schema.ClassPerson:
			for _, v := range r.Atomic(schema.AttrName) {
				b.lib.AddPersonName(v)
			}
		}
	}
	newByClass := make(map[string][]reference.ID)
	for _, r := range newRefs {
		newByClass[r.Class] = append(newByClass[r.Class], r.ID)
		idx, ok := b.indexes[r.Class]
		if !ok {
			idx = blocking.New(b.cfg.BucketCap)
			b.indexes[r.Class] = idx
		}
		blockingKeys(r, func(k string) { idx.Add(k, r.ID) })
	}

	var batch []*depgraph.Node
	drain := func() []*depgraph.Node {
		f := b.fresh
		b.fresh = nil
		batch = append(batch, f...)
		return f
	}

	// Pass 1: blocked candidate pairs involving the new references, in
	// three phases — serial enumeration of per-pair value comparisons,
	// parallel scoring over the worker pool, and serial wiring of nodes
	// and edges (the graph is single-writer). See pairscore.go.
	var items []*pairItem
	// Work items are carved from slab chunks: one allocation per 512
	// candidate pairs instead of one each. Pointers into a chunk stay
	// valid because a full chunk is retired, never regrown.
	var itemSlab []pairItem
	newItem := func(r1, r2 *reference.Reference, vals []valCompare) *pairItem {
		if len(itemSlab) == cap(itemSlab) {
			itemSlab = make([]pairItem, 0, 512)
		}
		itemSlab = append(itemSlab, pairItem{r1: r1, r2: r2, vals: vals})
		return &itemSlab[len(itemSlab)-1]
	}
	for _, class := range b.sch.Classes() {
		ids := newByClass[class.Name]
		idx := b.indexes[class.Name]
		if len(ids) == 0 || idx == nil {
			continue
		}
		idx.PairsInvolving(ids, func(x, y reference.ID) {
			b.candidatePairs++
			r1, r2 := b.store.Get(x), b.store.Get(y)
			if r1.ID == r2.ID || r1.Class != r2.Class {
				return
			}
			if b.g.LookupRefPair(r1.ID, r2.ID) != nil || b.removed[pairIndex(r1.ID, r2.ID)] != 0 {
				return
			}
			items = append(items, newItem(r1, r2, b.enumerateVals(r1, r2)))
		})
		b.skippedBuckets += idx.SkippedBuckets()
	}
	b.scoreItems(items)
	for _, it := range items {
		b.wireScored(it.r1, it.r2, false, it.vals, it.sims)
	}
	// Pass 2: association dependencies over the fresh pairs; induced pairs
	// created while wiring are themselves wired on the next sweep.
	for sweep := 0; sweep < 4 && len(b.fresh) > 0; sweep++ {
		f := drain()
		b.buildArticleAssociations(f)
		b.buildContactAssociations(f)
		b.buildGenericAssociations(f)
	}
	drain()

	// Constraint 1 (co-author distinctness) adds non-merge nodes for the
	// new articles.
	if b.cfg.Constraints {
		b.markCoAuthorConstraints(newByClass[schema.ClassArticle])
	}
	drain()

	return seedSort(b.sch, batch)
}

func (b *builder) seedOrder() []*depgraph.Node {
	var out []*depgraph.Node
	for _, ns := range b.seeds {
		out = append(out, ns...)
	}
	return seedSort(b.sch, out)
}

// seedSort orders nodes by class rank with an explicit total-order
// tie-break on the reference-id pair, so seed order (and therefore
// propagation order) cannot depend on map iteration, creation history, or
// scheduling. The sort is stable; the tie-break already induces a total
// order on RefPair nodes (a pair appears at most once), so stability only
// matters for hypothetical duplicate entries.
func seedSort(sch *schema.Schema, nodes []*depgraph.Node) []*depgraph.Node {
	rankOf := func(n *depgraph.Node) int {
		if c, ok := sch.Class(n.Class()); ok {
			return c.Rank
		}
		return 0
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		ri, rj := rankOf(nodes[i]), rankOf(nodes[j])
		if ri != rj {
			return ri < rj
		}
		if nodes[i].RefA() != nodes[j].RefA() {
			return nodes[i].RefA() < nodes[j].RefA()
		}
		return nodes[i].RefB() < nodes[j].RefB()
	})
	return nodes
}

// ensureRefPair returns the RefPair node for (r1, r2), creating it together
// with its atomic-value evidence nodes on first sight. It returns nil when
// the pair has no comparable evidence at all (the paper removes such nodes,
// §3.1 step 1(2)). induced marks pairs discovered through associations
// rather than blocking; induced venue pairs use a relaxed threshold so
// that article-driven venue reconciliation has nodes to act on.
func (b *builder) ensureRefPair(r1, r2 *reference.Reference, induced bool) *depgraph.Node {
	if r1.ID == r2.ID || r1.Class != r2.Class {
		return nil
	}
	key := pairIndex(r1.ID, r2.ID)
	if n := b.g.LookupRefPair(r1.ID, r2.ID); n != nil {
		return n
	}
	if prunedIn, ok := b.removed[key]; ok {
		if !induced || prunedIn == b.batch {
			return nil
		}
		// The pair was pruned for lack of evidence in an earlier batch, but
		// this batch's associations reach for it: rebuild it. The induced
		// path keeps relaxed-threshold venue pairs, and the library
		// statistics have grown since the pruning, so the original verdict
		// no longer stands — a permanent tombstone here made incremental
		// sessions silently drop article-driven venue evidence that the
		// equivalent batch run wires up.
		delete(b.removed, key)
	}
	vals := b.enumerateVals(r1, r2)
	return b.wireScored(r1, r2, induced, vals, b.scoreVals(vals))
}

// wireScored is the serial wiring phase behind ensureRefPair: it creates
// the RefPair node for (r1, r2) together with its atomic-value evidence
// nodes from the precomputed similarities (sims is indexed like vals).
// Callers have already screened the pair (distinct ids, same class, not
// present, not removed); duplicates are still tolerated and return the
// existing node.
func (b *builder) wireScored(r1, r2 *reference.Reference, induced bool, vals []valCompare, sims []float64) *depgraph.Node {
	if n := b.g.LookupRefPair(r1.ID, r2.ID); n != nil {
		return n
	}
	m := b.g.AddRefPair(r1.ID, r2.ID, r1.Class)

	relax := induced && r1.Class == schema.ClassVenue
	hasEvidence := false
	for i, v := range vals {
		sim := sims[i]
		thr := simfn.CandidateThreshold(v.cmp.evidence)
		if relax && thr > 0.05 {
			thr = 0.05
		}
		if sim < thr {
			continue
		}
		elemX := b.elemKey(v.cmp.attrA, v.v1)
		elemY := b.elemKey(v.cmp.attrB, v.v2)
		n := b.g.AddValuePair(v.cmp.evidence, elemX, elemY, sim)
		if n.Sim() >= b.cfg.AttrMergeThreshold {
			// MarkMerged (not a direct Status write) so that incremental
			// batches keep the maintained evidence digests exact.
			b.g.MarkMerged(n)
		}
		b.g.AddEdge(n, m, depgraph.RealValued, v.cmp.evidence)
		// Alias learning: merging the references certifies
		// identifying values as aliases (Figure 2's n6).
		if simfn.AliasEvidence(v.cmp.evidence) && !v.cmp.swap && v.cmp.attrA == v.cmp.attrB {
			b.g.AddEdge(m, n, depgraph.StrongBoolean, v.cmp.evidence)
		}
		hasEvidence = true
	}
	// Constraint-violating pairs are kept even without evidence and marked
	// non-merge: §3.4 requires constrained nodes to exist in the graph so
	// negative evidence can propagate (they are what makes the constrained
	// graph of Table 6 *larger*). A non-merge node is different from a
	// non-existing node.
	constrained := false
	if b.cfg.Constraints {
		switch r1.Class {
		case schema.ClassPerson:
			constrained = b.personConstrained(r1, r2)
		case schema.ClassVenue:
			constrained = b.venueConstrained(r1, r2)
		}
	}
	if constrained {
		b.g.MarkNonMerge(m)
	} else if !hasEvidence && !relax {
		b.g.RemoveIfIsolated(m)
		b.removed[pairIndex(r1.ID, r2.ID)] = b.batch
		return nil
	}
	rank := 0
	if c, ok := b.sch.Class(r1.Class); ok {
		rank = c.Rank
	}
	b.seeds[rank] = append(b.seeds[rank], m)
	b.fresh = append(b.fresh, m)
	return m
}

// sharedValueNode returns a merged ValuePair node representing an
// association target shared by both references (the paper's (a1, a1) node,
// §3.1 step 2). Its similarity is 1 by construction.
func (b *builder) sharedValueNode(target reference.ID) *depgraph.Node {
	elem := "r:" + refIDString(target)
	n := b.g.AddValuePair("shared", elem, elem, 1)
	b.g.MarkMerged(n)
	return n
}

func refIDString(id reference.ID) string {
	// Small positive integers; avoid fmt in this hot path.
	if id == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v := int(id); v > 0; v /= 10 {
		i--
		buf[i] = byte('0' + v%10)
	}
	return string(buf[i:])
}

// buildArticleAssociations wires author and venue dependencies for the
// given article pairs: author/venue similarities feed the article pair
// (real-valued), and the article pair's merge implies its aligned authors
// and venues merge (strong-boolean, Figure 2).
func (b *builder) buildArticleAssociations(fresh []*depgraph.Node) {
	for _, m := range fresh {
		if m.Class() != schema.ClassArticle || !m.Alive() {
			continue
		}
		r1 := b.store.Get(m.RefA())
		r2 := b.store.Get(m.RefB())
		b.wireAssociation(m, r1.Assoc(schema.AttrAuthoredBy), r2.Assoc(schema.AttrAuthoredBy), simfn.EvAuthors, b.cfg.Evidence >= EvidenceArticle)
		b.wireAssociation(m, r1.Assoc(schema.AttrPublishedIn), r2.Assoc(schema.AttrPublishedIn), simfn.EvVenue, true)
	}
}

// wireAssociation connects one association attribute of an article pair.
// strongBack controls whether the article's merge pushes the target pairs
// (disabled for authors below the Article evidence level).
func (b *builder) wireAssociation(m *depgraph.Node, as1, as2 []reference.ID, evidence string, strongBack bool) {
	for _, a1 := range as1 {
		for _, a2 := range as2 {
			if a1 == a2 {
				b.g.AddEdge(b.sharedValueNode(a1), m, depgraph.RealValued, evidence)
				continue
			}
			n := b.ensureRefPair(b.store.Get(a1), b.store.Get(a2), true)
			if n == nil {
				continue
			}
			b.g.AddEdge(n, m, depgraph.RealValued, evidence)
			if strongBack {
				b.g.AddEdge(m, n, depgraph.StrongBoolean, simfn.EvArticle)
			}
		}
	}
}

// buildContactAssociations adds the weak-boolean contact/co-author
// dependencies between person pairs (§3.1 step 2, Figure 2(b)). Only
// existing person-pair nodes participate: a contact pair with no node
// cannot contribute (the paper's (p4, p7) note).
func (b *builder) buildContactAssociations(fresh []*depgraph.Node) {
	if b.cfg.Evidence < EvidenceContact {
		return
	}
	// A contact shared with everyone carries no information: the dataset
	// owner appears in every contact list, and mailing lists relate all
	// their recipients. Weight contacts by discarding the hyper-popular
	// ones (the paper's §4 suggestion to "consider the relative size of
	// the value set of an associated attribute").
	personRefs := b.store.ByClass(schema.ClassPerson)
	popularity := make(map[reference.ID]int)
	listers := make(map[reference.ID][]reference.ID)
	for _, id := range personRefs {
		for _, c := range contactsOf(b.store.Get(id)) {
			popularity[c]++
			listers[c] = append(listers[c], id)
		}
	}
	popCap := len(personRefs) / 50
	if popCap < 12 {
		popCap = 12
	}

	// Inverse wiring: a fresh person pair is itself contact evidence for
	// every existing pair whose references list its two members. In batch
	// construction this duplicates the forward pass (edges dedupe); in
	// incremental batches it is what connects new contact decisions to
	// pre-existing pairs.
	for _, n := range fresh {
		if n.Class() != schema.ClassPerson || !n.Alive() {
			continue
		}
		if popularity[n.RefA()] > popCap || popularity[n.RefB()] > popCap {
			continue
		}
		for _, r1 := range listers[n.RefA()] {
			for _, r2 := range listers[n.RefB()] {
				if r1 == r2 || r1 == n.RefA() || r1 == n.RefB() || r2 == n.RefA() || r2 == n.RefB() {
					continue
				}
				if m := b.g.LookupRefPair(r1, r2); m != nil && m != n {
					b.g.AddEdge(n, m, depgraph.WeakBoolean, simfn.EvContact)
				}
			}
		}
	}

	for _, m := range fresh {
		if m.Class() != schema.ClassPerson || !m.Alive() {
			continue
		}
		// The paper pools co-authors and email contacts into one contact
		// list (Figure 2(b) relates p5's *co-author* to p8's *email
		// contact*), so the cross product runs over the union.
		c1s := contactsOf(b.store.Get(m.RefA()))
		c2s := contactsOf(b.store.Get(m.RefB()))
		for _, c1 := range c1s {
			if popularity[c1] > popCap {
				continue
			}
			for _, c2 := range c2s {
				if popularity[c2] > popCap {
					continue
				}
				if c1 == c2 {
					b.g.AddEdge(b.sharedValueNode(c1), m, depgraph.WeakBoolean, simfn.EvContact)
					continue
				}
				if c1 == m.RefA() || c1 == m.RefB() || c2 == m.RefA() || c2 == m.RefB() {
					continue
				}
				if n := b.g.LookupRefPair(c1, c2); n != nil && n != m {
					b.g.AddEdge(n, m, depgraph.WeakBoolean, simfn.EvContact)
				}
			}
		}
	}
}

// contactsOf returns the union of a person's co-author and email-contact
// links, deduplicated, in stable order.
func contactsOf(r *reference.Reference) []reference.ID {
	co := r.Assoc(schema.AttrCoAuthor)
	ec := r.Assoc(schema.AttrEmailContact)
	if len(ec) == 0 {
		return co
	}
	if len(co) == 0 {
		return ec
	}
	out := make([]reference.ID, 0, len(co)+len(ec))
	seen := make(map[reference.ID]bool, len(co)+len(ec))
	for _, lists := range [2][]reference.ID{co, ec} {
		for _, id := range lists {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// buildGenericAssociations wires association evidence for custom classes
// conservatively, in the style of the paper's contact evidence: a shared
// link target, or a reconciled pair of link targets, adds weak-boolean
// evidence (γ per link) gated on the pair's own attribute similarity.
// Built-in classes are handled by their specialized wiring.
func (b *builder) buildGenericAssociations(fresh []*depgraph.Node) {
	builtin := map[string]bool{
		schema.ClassPerson: true, schema.ClassArticle: true, schema.ClassVenue: true,
	}
	for _, m := range fresh {
		if builtin[m.Class()] || !m.Alive() {
			continue
		}
		class, ok := b.sch.Class(m.Class())
		if !ok || len(class.AssocAttrs()) == 0 {
			continue
		}
		r1 := b.store.Get(m.RefA())
		r2 := b.store.Get(m.RefB())
		for _, attr := range class.AssocAttrs() {
			ev := "ga:" + attr.Name
			for _, a1 := range r1.Assoc(attr.Name) {
				for _, a2 := range r2.Assoc(attr.Name) {
					if a1 == a2 {
						b.g.AddEdge(b.sharedValueNode(a1), m, depgraph.WeakBoolean, ev)
						continue
					}
					n := b.ensureRefPair(b.store.Get(a1), b.store.Get(a2), true)
					if n != nil && n != m {
						b.g.AddEdge(n, m, depgraph.WeakBoolean, ev)
					}
				}
			}
		}
	}
}

// markCoAuthorConstraints enforces constraint 1 of §5.3 for the given
// article references: the authors of one article are distinct persons.
// Missing pair nodes are created (constraints add nodes to the graph,
// Table 6) and marked non-merge.
func (b *builder) markCoAuthorConstraints(articles []reference.ID) {
	for _, id := range articles {
		authors := b.store.Get(id).Assoc(schema.AttrAuthoredBy)
		for i := 0; i < len(authors); i++ {
			for j := i + 1; j < len(authors); j++ {
				n := b.g.LookupRefPair(authors[i], authors[j])
				if n == nil {
					n = b.g.AddRefPair(authors[i], authors[j], schema.ClassPerson)
				}
				b.g.MarkNonMerge(n)
			}
		}
	}
}

// personConstrained reports constraints 2 and 3 of §5.3 on a person pair:
//
//  2. incompatible names (same first, completely different last, or vice
//     versa) make the references distinct unless they share an email;
//  3. two different accounts on the same email server belong to different
//     persons.
func (b *builder) personConstrained(r1, r2 *reference.Reference) bool {
	e1 := b.emailsOf(r1)
	e2 := b.emailsOf(r2)
	for _, a1 := range e1 {
		for _, a2 := range e2 {
			if a1.Key() != "" && a1.Key() == a2.Key() {
				return false // shared account: hard positive key beats both constraints
			}
		}
	}
	for _, a1 := range e1 {
		for _, a2 := range e2 {
			if a1.Server() != "" && a1.Server() == a2.Server() && a1.Local != a2.Local {
				return true
			}
		}
	}
	n1 := b.namesOf(r1)
	n2 := b.namesOf(r2)
	anyIncompatible, anyCompatibleFull := false, false
	for _, x := range n1 {
		for _, y := range n2 {
			if names.Incompatible(x, y) {
				anyIncompatible = true
			} else if x.IsFull() && y.IsFull() && names.Compatible(x, y) {
				anyCompatibleFull = true
			}
		}
	}
	return anyIncompatible && !anyCompatibleFull
}

// venueConstrained reports the venue domain constraint: a venue
// reference denotes one *edition*, and an edition has a unique year, so two
// references whose years are flatly incompatible (differ by more than the
// off-by-one citation noise YearSim tolerates) are guaranteed distinct.
// Without this rule a single noisy cross-edition merge lets reference
// enrichment union the evidence of whole year ranges — the MAX rule then
// sees some agreeing year pair in every cluster and the editions collapse.
func (b *builder) venueConstrained(r1, r2 *reference.Reference) bool {
	y1 := r1.Atomic(schema.AttrYear)
	y2 := r2.Atomic(schema.AttrYear)
	if len(y1) == 0 || len(y2) == 0 {
		return false
	}
	// The constraint tolerates a gap of 2: citations misprint years by
	// one in either direction, so two mentions of one edition can be two
	// apart. A false constraint is costly — it permanently splits the
	// edition at the constrained closure — so this stays conservative.
	minGap, seen := 0, false
	for _, a := range y1 {
		for _, c := range y2 {
			if g, ok := simfn.YearGap(a, c); ok && (!seen || g < minGap) {
				minGap, seen = g, true
			}
		}
	}
	return seen && minGap > 2
}

func (b *builder) namesOf(r *reference.Reference) []names.Name {
	if ns, ok := b.parsedNames[r.ID]; ok {
		return ns
	}
	var ns []names.Name
	for _, raw := range r.Atomic(schema.AttrName) {
		ns = append(ns, names.Parse(raw))
	}
	b.parsedNames[r.ID] = ns
	return ns
}

func (b *builder) emailsOf(r *reference.Reference) []emailaddr.Address {
	if es, ok := b.parsedEmails[r.ID]; ok {
		return es
	}
	var es []emailaddr.Address
	for _, raw := range r.Atomic(schema.AttrEmail) {
		if a, ok := emailaddr.Parse(raw); ok {
			es = append(es, a)
		}
	}
	b.parsedEmails[r.ID] = es
	return es
}
