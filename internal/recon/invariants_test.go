package recon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"refrecon/internal/datagen/pim"
	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
)

// TestPartitionInvariants checks the structural laws of any reconciliation
// result on a generated dataset: partitions are disjoint, cover every
// reference, and never mix classes; SameEntity agrees with Partitions.
func TestPartitionInvariants(t *testing.T) {
	g, err := pim.Generate(pim.DatasetB(0.05))
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(g.Store)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[reference.ID]bool)
	total := 0
	for class, parts := range res.Partitions {
		for _, part := range parts {
			if len(part) == 0 {
				t.Fatal("empty partition")
			}
			for _, id := range part {
				if seen[id] {
					t.Fatalf("reference %d in two partitions", id)
				}
				seen[id] = true
				total++
				if got := g.Store.Get(id).Class; got != class {
					t.Fatalf("reference %d of class %s filed under %s", id, got, class)
				}
			}
			for _, id := range part {
				if !res.SameEntity(part[0], id) {
					t.Fatal("SameEntity disagrees with Partitions")
				}
			}
		}
	}
	if total != g.Store.Len() {
		t.Fatalf("partitions cover %d of %d references", total, g.Store.Len())
	}
}

// TestPermutationInsensitivity reconciles the same logical references
// inserted in different orders: the pairwise decisions must not depend on
// insertion order.
func TestPermutationInsensitivity(t *testing.T) {
	type spec struct {
		name, email string
	}
	specs := []spec{
		{"Jennifer Widom", "widom@stanford.edu"},
		{"Widom, J.", ""},
		{"", "widom@stanford.edu"},
		{"Hector Garcia-Molina", "hector@stanford.edu"},
		{"Garcia-Molina, H.", "hector@stanford.edu"},
		{"Serge Abiteboul", "serge@inria.fr"},
		{"Abiteboul, S.", "serge@inria.fr"},
		{"Victor Vianu", "vianu@ucsd.edu"},
		{"Moshe Vardi", "vardi@rice.edu"},
		{"Vardi, M.", ""},
	}
	decide := func(perm []int) map[[2]int]bool {
		s := reference.NewStore()
		pos := make([]reference.ID, len(specs))
		for _, idx := range perm {
			r := reference.New(schema.ClassPerson)
			r.AddAtomic(schema.AttrName, specs[idx].name)
			r.AddAtomic(schema.AttrEmail, specs[idx].email)
			pos[idx] = s.Add(r)
		}
		res, err := New(schema.PIM(), DefaultConfig()).Reconcile(s)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[[2]int]bool)
		for i := range specs {
			for j := i + 1; j < len(specs); j++ {
				out[[2]int{i, j}] = res.SameEntity(pos[i], pos[j])
			}
		}
		return out
	}
	identity := make([]int, len(specs))
	for i := range identity {
		identity[i] = i
	}
	base := decide(identity)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		perm := rng.Perm(len(specs))
		got := decide(perm)
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("trial %d: decision for pair %v changed with insertion order", trial, k)
			}
		}
	}
}

// TestReconcileSurvivesGarbage feeds adversarial attribute values — empty
// strings, control characters, enormous tokens, lone punctuation — and
// requires reconciliation to complete without panicking.
func TestReconcileSurvivesGarbage(t *testing.T) {
	f := func(names [8]string, emails [8]string) bool {
		s := reference.NewStore()
		for i := range names {
			r := reference.New(schema.ClassPerson)
			r.AddAtomic(schema.AttrName, names[i])
			r.AddAtomic(schema.AttrEmail, emails[i])
			s.Add(r)
		}
		// A reference with no attributes at all.
		s.Add(reference.New(schema.ClassPerson))
		res, err := New(schema.PIM(), DefaultConfig()).Reconcile(s)
		if err != nil {
			return false
		}
		n := 0
		for _, parts := range res.Partitions {
			for _, p := range parts {
				n += len(p)
			}
		}
		return n == s.Len()
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEmptyStore reconciles nothing.
func TestEmptyStore(t *testing.T) {
	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(reference.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 0 {
		t.Errorf("assignment = %v", res.Assignment)
	}
}

// TestSingleReference yields one singleton partition.
func TestSingleReference(t *testing.T) {
	s := reference.NewStore()
	r := reference.New(schema.ClassPerson)
	r.AddAtomic(schema.AttrName, "Only One")
	s.Add(r)
	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PartitionCount(schema.ClassPerson); got != 1 {
		t.Errorf("partitions = %d", got)
	}
}

// TestFullModeReachesFixedPoint verifies the §3.2 convergence promise end
// to end: after a Full-mode run, rescoring any node must not raise its
// similarity (beyond the re-activation epsilon).
func TestFullModeReachesFixedPoint(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.04))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	b := newBuilder(g.Store, schema.PIM(), cfg)
	graph, seed := b.build()
	scorer := &simfn.Scorer{Params: cfg.Params}
	graph.Run(seed, depgraph.Options{
		Scorer: scorer,
		MergeThreshold: func(n *depgraph.Node) float64 {
			if n.Kind() == depgraph.ValuePair {
				return cfg.AttrMergeThreshold
			}
			return cfg.MergeThreshold
		},
		Propagate: true,
		Enrich:    true,
	})
	if bad := graph.CheckFixedPoint(scorer, 1e-6); len(bad) != 0 {
		for i, n := range bad {
			if i == 5 {
				break
			}
			t.Logf("violation: %v would rescore to %f", n, scorer.Score(n))
		}
		t.Fatalf("%d nodes not at fixed point", len(bad))
	}
}

// TestEvidenceLevelGating checks that lower evidence levels really omit
// their evidence: Attr-wise builds no cross name/email value nodes and no
// contact edges.
func TestEvidenceLevelGating(t *testing.T) {
	g, err := pim.Generate(pim.DatasetA(0.03))
	if err != nil {
		t.Fatal(err)
	}
	count := func(ev EvidenceLevel) (cross, contact int) {
		cfg := DefaultConfig()
		cfg.Evidence = ev
		b := newBuilder(g.Store, schema.PIM(), cfg)
		graph, _ := b.build()
		graph.Nodes(func(n *depgraph.Node) {
			if n.Kind() == depgraph.ValuePair && n.Class() == "nameEmail" {
				cross++
			}
			for _, e := range n.Out() {
				if e.Evidence == "contact" {
					contact++
				}
			}
		})
		return cross, contact
	}
	crossAttr, contactAttr := count(EvidenceAttrWise)
	if crossAttr != 0 || contactAttr != 0 {
		t.Errorf("Attr-wise must have no cross/contact evidence: %d/%d", crossAttr, contactAttr)
	}
	crossNE, contactNE := count(EvidenceNameEmail)
	if crossNE == 0 {
		t.Error("Name&Email should add cross value nodes")
	}
	if contactNE != 0 {
		t.Errorf("Name&Email must not add contact edges: %d", contactNE)
	}
	crossC, contactC := count(EvidenceContact)
	if crossC == 0 || contactC == 0 {
		t.Errorf("Contact level should have both: %d/%d", crossC, contactC)
	}
}

// TestModesAllTerminate runs every mode/evidence combination on a small
// dataset and requires clean termination without step-cap truncation.
func TestModesAllTerminate(t *testing.T) {
	g, err := pim.Generate(pim.DatasetC(0.03))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeFull, ModeTraditional, ModePropagation, ModeMerge} {
		for _, ev := range []EvidenceLevel{EvidenceAttrWise, EvidenceNameEmail, EvidenceArticle, EvidenceContact} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Evidence = ev
			res, err := New(schema.PIM(), cfg).Reconcile(g.Store)
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, ev, err)
			}
			if res.Stats.Engine.Truncated {
				t.Errorf("%s/%s hit the step cap", mode, ev)
			}
		}
	}
}
