package recon

import (
	"errors"
	"fmt"
)

// Sentinel errors of the reconciliation layer. Callers classify failures
// with errors.Is; the root refrecon package re-exports these values and
// internal/serve maps them to HTTP statuses.
var (
	// ErrCanceled marks a run stopped by context cancellation. The error
	// returned by ReconcileContext / CommitContext wraps both ErrCanceled
	// and the context's own ctx.Err(), so errors.Is matches either.
	ErrCanceled = errors.New("recon: canceled")
	// ErrSchemaViolation marks input that fails schema validation: an
	// unknown class, a value on an undeclared attribute, or an association
	// to a reference of the wrong class.
	ErrSchemaViolation = errors.New("recon: schema violation")
	// ErrBatchRejected marks an ingest batch refused before any reference
	// was applied (the batch is all-or-nothing; the store is unchanged).
	ErrBatchRejected = errors.New("recon: batch rejected")
)

// canceledError carries the phase a cancellation landed in. It unwraps to
// both ErrCanceled and the underlying context error, so
// errors.Is(err, context.Canceled) and errors.Is(err, ErrCanceled) both
// hold.
type canceledError struct {
	phase string
	cause error
}

func (e *canceledError) Error() string {
	return fmt.Sprintf("recon: %s canceled: %v", e.phase, e.cause)
}

func (e *canceledError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// canceled wraps a context error with the phase it interrupted.
func canceled(phase string, cause error) error {
	return &canceledError{phase: phase, cause: cause}
}

// invalidInput wraps a store-validation failure as a schema violation.
func invalidInput(err error) error {
	return fmt.Errorf("%w: %w", ErrSchemaViolation, err)
}
