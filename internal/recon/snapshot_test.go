package recon

import (
	"fmt"
	"sort"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// snapshotFingerprint renders everything a snapshot exposes into one
// comparable string: references, partitions, entities, a sample pair
// decision, and an explain path.
func snapshotFingerprint(t *testing.T, s *Snapshot) string {
	t.Helper()
	out := fmt.Sprintf("version=%d refs=%d\n", s.Version, s.RefCount())
	s.EachRef(func(r *SnapRef) {
		out += fmt.Sprintf("ref %d %s %v %v\n", r.ID, r.Class, r.Atomic, r.Assoc)
	})
	classes := make([]string, 0, len(s.Partitions()))
	for c := range s.Partitions() {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		out += fmt.Sprintf("%s: %v\n", c, s.Partitions()[c])
	}
	for _, e := range s.Entities() {
		out += fmt.Sprintf("entity %d (%s) members=%v atomic=%v name=%q\n",
			e.Canonical, e.Class, e.Members, e.Atomic, e.Name())
	}
	if d := s.Pair(0, 1); d != nil {
		out += fmt.Sprintf("pair(0,1) sim=%.6f status=%s evidence=%d\n", d.Sim, d.Status, len(d.Evidence))
	}
	if exp, err := s.Explain(0, 1); err == nil {
		out += exp.String()
	}
	return out
}

// twoAccountStore builds three person references where the first two share
// an email account (a hard merge) and the third is unrelated.
func twoAccountStore() *reference.Store {
	store := reference.NewStore()
	store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Alice Smith").
		AddAtomic(schema.AttrEmail, "asmith@cs.example.edu"))
	store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "A. Smith").
		AddAtomic(schema.AttrEmail, "asmith@cs.example.edu"))
	store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Bob Jones").
		AddAtomic(schema.AttrEmail, "bjones@ee.example.edu"))
	return store
}

// TestSnapshotIsolation pins the snapshot contract: mutating the live
// session after export — adding references, reconciling further batches —
// must not change anything an exported snapshot exposes.
func TestSnapshotIsolation(t *testing.T) {
	store := twoAccountStore()
	sess := New(schema.PIM(), DefaultConfig()).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.SameEntity(0, 1) {
		t.Fatalf("expected references 0 and 1 merged in snapshot")
	}
	if snap.SameEntity(0, 2) {
		t.Fatalf("unexpected merge of references 0 and 2")
	}
	before := snapshotFingerprint(t, snap)

	// Mutate the live session: a new reference that merges with Bob and a
	// fresh batch.
	store.Add(reference.New(schema.ClassPerson).
		AddAtomic(schema.AttrName, "Robert Jones").
		AddAtomic(schema.AttrEmail, "bjones@ee.example.edu"))
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}

	if got := snapshotFingerprint(t, snap); got != before {
		t.Errorf("snapshot changed after session mutation:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if snap.RefCount() != 3 {
		t.Errorf("snapshot RefCount = %d, want 3 (pre-mutation)", snap.RefCount())
	}
	if _, ok := snap.Ref(3); ok {
		t.Errorf("snapshot exposes reference added after export")
	}

	// The new snapshot covers the new state and is distinct.
	snap2, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.RefCount() != 4 {
		t.Errorf("new snapshot RefCount = %d, want 4", snap2.RefCount())
	}
	if snap2.Version <= snap.Version {
		t.Errorf("new snapshot version %d not greater than %d", snap2.Version, snap.Version)
	}
	if !snap2.SameEntity(2, 3) {
		t.Errorf("expected references 2 and 3 merged in second snapshot")
	}
}

// TestSnapshotExplainMatchesSession checks the snapshot's copied explain
// data agrees with the live session's.
func TestSnapshotExplainMatchesSession(t *testing.T) {
	store := twoAccountStore()
	sess := New(schema.PIM(), DefaultConfig()).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]reference.ID{{0, 1}, {0, 2}, {1, 2}} {
		want, err := sess.Explain(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := snap.Explain(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("Explain(%d,%d) mismatch:\nsession:\n%s\nsnapshot:\n%s",
				pair[0], pair[1], want.String(), got.String())
		}
	}
}

// TestResultSnapshot covers the one-shot export: partitions and entities
// are present, pair data is absent.
func TestResultSnapshot(t *testing.T) {
	store := twoAccountStore()
	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot(store)
	if snap.RefCount() != 3 {
		t.Fatalf("RefCount = %d, want 3", snap.RefCount())
	}
	if !snap.SameEntity(0, 1) {
		t.Errorf("expected references 0 and 1 merged")
	}
	ent := snap.EntityOf(0)
	if ent == nil || ent.Canonical != 0 || len(ent.Members) != 2 {
		t.Fatalf("EntityOf(0) = %+v, want canonical 0 with 2 members", ent)
	}
	if got := len(ent.Atomic[schema.AttrName]); got != 2 {
		t.Errorf("enriched entity has %d names, want 2 (union of member values)", got)
	}
	if d := snap.Pair(0, 1); d != nil {
		t.Errorf("Result snapshot unexpectedly carries pair data: %+v", d)
	}
	exp, err := snap.Explain(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Same || exp.Direct != nil || len(exp.Path) != 0 {
		t.Errorf("Result snapshot Explain = %+v, want Same with no pair evidence", exp)
	}
}

// TestSnapshotBeforeReconcile pins the error contract.
func TestSnapshotBeforeReconcile(t *testing.T) {
	sess := New(schema.PIM(), DefaultConfig()).NewSession(reference.NewStore())
	if _, err := sess.Snapshot(); err == nil {
		t.Fatal("Snapshot before Reconcile should error")
	}
}

// TestMatcherQuery exercises the query path end to end at the recon level:
// blocking-based candidate lookup, entity grouping, and scoring.
func TestMatcherQuery(t *testing.T) {
	store := twoAccountStore()
	sess := New(schema.PIM(), DefaultConfig()).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(schema.PIM(), DefaultConfig(), snap)

	cands, stats, err := m.Match(Query{
		Class: schema.ClassPerson,
		Atomic: map[string][]string{
			schema.AttrName:  {"Alice Smith"},
			schema.AttrEmail: {"asmith@cs.example.edu"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates for an exact-copy query")
	}
	if cands[0].Entity.Canonical != 0 {
		t.Errorf("top candidate canonical = %d, want 0", cands[0].Entity.Canonical)
	}
	if !cands[0].Match {
		t.Errorf("exact-copy query should be a confident match (score %.3f)", cands[0].Score)
	}
	if cands[0].Score < 0.99 {
		t.Errorf("identical email account should score ~1, got %.3f", cands[0].Score)
	}
	if stats.CandidateRefs == 0 || stats.CandidateRefs >= store.Len() {
		t.Errorf("CandidateRefs = %d, want blocking-restricted in (0, %d)", stats.CandidateRefs, store.Len())
	}

	// Unknown class and unknown attribute error.
	if _, _, err := m.Match(Query{Class: "Nope"}); err == nil {
		t.Error("unknown class should error")
	}
	if _, _, err := m.Match(Query{Class: schema.ClassPerson, Atomic: map[string][]string{"zip": {"x"}}}); err == nil {
		t.Error("unknown attribute should error")
	}

	// An empty query returns nothing rather than scanning the store.
	cands, stats, err = m.Match(Query{Class: schema.ClassPerson})
	if err != nil || len(cands) != 0 || stats.CandidateRefs != 0 {
		t.Errorf("empty query: cands=%v stats=%+v err=%v, want empty", cands, stats, err)
	}
}
