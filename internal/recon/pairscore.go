package recon

// Three-phase candidate-pair evaluation. The dominant cost of graph
// construction is not the fixed-point loop but the atomic attribute
// similarities (Jaro-Winkler names, TF-IDF titles, fuzzy venue Jaccard)
// computed for every blocked candidate pair. Those comparisons are pure
// functions of the two values and the (frozen-per-batch) library
// statistics, so they parallelize perfectly; everything that touches the
// graph does not, because the graph is single-writer. incorporate
// therefore splits pass 1 into:
//
//  1. serial enumeration — blocking emits candidate pairs and each pair's
//     value comparisons are listed in deterministic order;
//  2. parallel scoring — the work items fan out over the
//     internal/parallel pool, each writing similarities into its own
//     slots (results are independent of scheduling, so any worker count
//     yields bit-identical output; Workers=1 runs inline);
//  3. serial wiring — nodes and edges are created from the precomputed
//     scores in the exact order the serial path would have used.
//
// Induced pairs discovered later during association wiring still score
// serially through the same cache-backed comparators.

import (
	"refrecon/internal/parallel"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// valCompare is one atomic value comparison of a candidate pair: the
// attribute comparison it instantiates and the two raw values, in
// (attrA, attrB) order.
type valCompare struct {
	cmp    attrCompare
	v1, v2 string
}

// pairItem is the unit of work of the parallel scoring phase: one
// candidate reference pair with its enumerated value comparisons and
// (after scoring) their similarities, indexed like vals.
type pairItem struct {
	r1, r2 *reference.Reference
	vals   []valCompare
	sims   []float64
}

// comparisonsFor resolves the comparable attribute pairs for a class,
// falling back to the generic same-attribute table for custom schemas.
// The table is a pure function of (class, evidence level), both fixed for
// the builder's lifetime, so it is computed once per class and the cached
// slice is shared read-only by every candidate pair.
func (b *builder) comparisonsFor(class string) []attrCompare {
	if cmp, ok := b.cmpTables[class]; ok {
		return cmp
	}
	cmp := comparisons(b.sch, class, b.cfg.Evidence)
	b.cmpTables[class] = cmp
	return cmp
}

// comparisons is the schema-aware comparison table shared by graph
// construction and the query-time Matcher.
func comparisons(sch *schema.Schema, class string, level EvidenceLevel) []attrCompare {
	cmp := atomicComparisons(class, level)
	if cmp == nil {
		if c, ok := sch.Class(class); ok {
			cmp = genericComparisons(c)
		}
	}
	return cmp
}

// enumerateVals lists the value comparisons of a candidate pair in the
// deterministic order the wiring phase evaluates them. The combination
// count is known up front, so the list is allocated exactly once.
func (b *builder) enumerateVals(r1, r2 *reference.Reference) []valCompare {
	cmps := b.comparisonsFor(r1.Class)
	n := 0
	for _, cmp := range cmps {
		n += len(r1.Atomic(cmp.attrA)) * len(r2.Atomic(cmp.attrB))
	}
	if n == 0 {
		return nil
	}
	vals := make([]valCompare, 0, n)
	for _, cmp := range cmps {
		for _, v1 := range r1.Atomic(cmp.attrA) {
			for _, v2 := range r2.Atomic(cmp.attrB) {
				vals = append(vals, valCompare{cmp, v1, v2})
			}
		}
	}
	return vals
}

// compareVal scores one value comparison through the cache-backed
// similarity library, honoring the comparator's argument order.
func (b *builder) compareVal(v valCompare) float64 {
	x, y := v.v1, v.v2
	if v.cmp.swap {
		x, y = v.v2, v.v1
	}
	return b.lib.Compare(v.cmp.evidence, x, y)
}

// scoreVals scores a value-comparison list serially (the induced-pair and
// incremental paths). The result lives in a builder-owned scratch buffer:
// it is consumed within the caller's wiring pass and never retained, so
// one buffer serves every induced pair.
func (b *builder) scoreVals(vals []valCompare) []float64 {
	if len(vals) == 0 {
		return nil
	}
	if cap(b.simScratch) < len(vals) {
		b.simScratch = make([]float64, len(vals)*2)
	}
	sims := b.simScratch[:len(vals)]
	for i, v := range vals {
		sims[i] = b.compareVal(v)
	}
	return sims
}

// scoreItems fans a batch's value comparisons out over the worker pool.
// Each item writes only its own sims slice, so the result is independent
// of scheduling; Workers=1 runs inline on the calling goroutine. When the
// observer requests profiling, workers run under a "build" pprof label so
// CPU profiles attribute the scoring fan-out to the construction phase.
func (b *builder) scoreItems(items []*pairItem) {
	phase := ""
	if b.cfg.Obs.Profiling() {
		phase = "build"
	}
	// Carve every item's sims out of one arena up front (serially), so the
	// parallel phase allocates nothing: each worker only writes through its
	// item's pre-sliced, capacity-clamped window.
	total := 0
	for _, it := range items {
		total += len(it.vals)
	}
	arena := make([]float64, total)
	off := 0
	for _, it := range items {
		n := len(it.vals)
		it.sims = arena[off : off+n : off+n]
		off += n
	}
	parallel.ForLabeled(b.cfg.Workers, len(items), phase, func(i int) {
		it := items[i]
		for j, v := range it.vals {
			it.sims[j] = b.compareVal(v)
		}
	})
}
