package recon

// Query-time collective reconciliation: the CollectiveMatcher wraps the
// attribute-only Matcher and, per query, asks internal/collective to
// expand a bounded neighborhood around the query reference, run the
// propagation fixed point over it, and raise the entity scores with the
// collectively-informed pair similarities. A degraded run (budget
// exhausted) falls back to the Matcher's candidate list bit-for-bit — the
// fallback is the Matcher, not an approximation of it.

import (
	"fmt"
	"sort"

	"refrecon/internal/collective"
	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
	"refrecon/internal/tokenizer"
)

// contactsAttr is the pseudo-attribute the collective host pools a
// person's coAuthor and emailContact links under, mirroring the offline
// builder's contact union (Figure 2(b)).
const contactsAttr = "contacts"

// CollectiveStats extends MatchStats with the expansion/propagation
// telemetry of the collective pass.
type CollectiveStats struct {
	MatchStats
	// Expansion describes the collective pass: neighborhood size, engine
	// activity, and whether (and why) the query degraded to the
	// attribute-only fallback.
	Expansion collective.Stats
}

// CollectiveMatcher answers reconciliation queries with query-time
// collective resolution over a Matcher's snapshot. Safe for concurrent
// use: each Match call materializes its own local graph.
type CollectiveMatcher struct {
	m  *Matcher
	cc collective.Config
}

// NewCollectiveMatcher wraps a Matcher. Unset collective thresholds and
// parameters inherit the Matcher's reconciliation Config, so the local
// fixed point agrees with the offline one.
func NewCollectiveMatcher(m *Matcher, cc collective.Config) *CollectiveMatcher {
	if cc.Params == nil {
		cc.Params = m.cfg.Params
	}
	if cc.MergeThreshold == 0 {
		cc.MergeThreshold = m.cfg.MergeThreshold
	}
	if cc.AttrMergeThreshold == 0 {
		cc.AttrMergeThreshold = m.cfg.AttrMergeThreshold
	}
	if cc.Obs == nil {
		cc.Obs = m.cfg.Obs
	}
	return &CollectiveMatcher{m: m, cc: cc.WithDefaults()}
}

// Matcher returns the wrapped attribute-only matcher.
func (cm *CollectiveMatcher) Matcher() *Matcher { return cm.m }

// Config returns the resolved collective configuration (defaults filled).
func (cm *CollectiveMatcher) Config() collective.Config { return cm.cc }

// Match resolves one query collectively under the matcher's configured
// budgets.
func (cm *CollectiveMatcher) Match(q Query) ([]Candidate, CollectiveStats, error) {
	return cm.MatchConfig(q, cm.cc)
}

// MatchConfig resolves one query collectively under an explicit budget
// configuration (serve uses it for per-query budget knobs). Collective
// scores only ever raise an entity above its attribute-only score, so the
// result is never worse than Matcher.Match on the same query; when the
// budget degrades the run, it is exactly Matcher.Match.
func (cm *CollectiveMatcher) MatchConfig(q Query, cc collective.Config) ([]Candidate, CollectiveStats, error) {
	m := cm.m
	class, ok := m.sch.Class(q.Class)
	if !ok {
		return nil, CollectiveStats{}, fmt.Errorf("recon: unknown query class %q", q.Class)
	}
	qr, err := buildQueryRef(class, q)
	if err != nil {
		return nil, CollectiveStats{}, err
	}
	assoc, err := cm.validateAssoc(class, q)
	if err != nil {
		return nil, CollectiveStats{}, err
	}
	if qr.IsEmpty() && len(assoc) == 0 {
		return nil, CollectiveStats{}, nil
	}

	// Attribute-only base, untruncated: the collective pass raises entity
	// scores, and the final ranking must see every blocked entity, not
	// the attribute-only top-limit.
	baseQ := q
	baseQ.Assoc = nil
	baseQ.Limit = 1 << 30
	base, mstats, err := m.Match(baseQ)
	if err != nil {
		return nil, CollectiveStats{}, err
	}
	st := CollectiveStats{MatchStats: mstats}

	limit := q.Limit
	if limit <= 0 {
		limit = 10
	}
	finish := func(cands []Candidate) []Candidate {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Score != cands[j].Score {
				return cands[i].Score > cands[j].Score
			}
			return cands[i].Entity.Canonical < cands[j].Entity.Canonical
		})
		if len(cands) > limit {
			cands = cands[:limit]
		}
		MarkMatches(cands, m.cfg.MergeThreshold)
		return cands
	}

	if qr.IsEmpty() {
		// Associations alone generate no blocking candidates; nothing to
		// expand from.
		return nil, st, nil
	}

	host := newQueryHost(m, qr, assoc, cc.AttrMergeThreshold)
	res := collective.Resolve(host, collective.Request{Query: host.qid}, cc)
	st.Expansion = res.Stats
	if res.Stats.Degraded || res.Scores == nil {
		return finish(base), st, nil
	}

	// Entity-level MAX raise: a candidate entity's score becomes the max
	// of its attribute-only score and the collective similarity of any of
	// its member references with the query. Candidate ids are visited in
	// sorted order (MAX is order-independent; the order only pins the
	// iteration itself).
	pos := make(map[int]int, len(base))
	for i := range base {
		pos[base[i].Entity.Label] = i
	}
	ids := make([]reference.ID, 0, len(res.Scores))
	for id := range res.Scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		label, ok := m.snap.assignment[id]
		if !ok {
			continue
		}
		i, ok := pos[label]
		if !ok {
			continue
		}
		if s := res.Scores[id]; s > base[i].Score {
			base[i].Score = s
		}
	}
	return finish(base), st, nil
}

// validateAssoc checks the query's association attributes against the
// class schema and its target ids against the snapshot, returning a
// normalized copy with sorted, deduplicated target lists.
func (cm *CollectiveMatcher) validateAssoc(class *schema.Class, q Query) (map[string][]reference.ID, error) {
	if len(q.Assoc) == 0 {
		return nil, nil
	}
	snap := cm.m.snap
	out := make(map[string][]reference.ID, len(q.Assoc))
	attrs := make([]string, 0, len(q.Assoc))
	for a := range q.Assoc {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		a, ok := class.Attr(attr)
		if !ok || a.Kind != schema.Association {
			return nil, fmt.Errorf("recon: class %q has no association attribute %q", q.Class, attr)
		}
		seen := make(map[reference.ID]bool, len(q.Assoc[attr]))
		var ts []reference.ID
		for _, t := range q.Assoc[attr] {
			sr, ok := snap.Ref(t)
			if !ok {
				return nil, fmt.Errorf("recon: association %q target %d is not a stored reference", attr, t)
			}
			if sr.Class != a.Target {
				return nil, fmt.Errorf("recon: association %q target %d has class %q, want %q", attr, t, sr.Class, a.Target)
			}
			if !seen[t] {
				seen[t] = true
				ts = append(ts, t)
			}
		}
		if len(ts) > 0 {
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			out[attr] = ts
		}
	}
	return out, nil
}

// queryHost adapts one (Matcher, query reference) pair to the
// collective.Host interface. The query reference gets the first id past
// the stored id space; everything else resolves through the snapshot.
// Not safe for concurrent use — each Match call builds its own.
type queryHost struct {
	m       *Matcher
	qr      *reference.Reference
	qid     reference.ID
	assoc   map[string][]reference.ID
	attrThr float64

	cands map[reference.ID][]reference.ID
	cmps  map[string][]attrCompare
	elems map[string]map[string]string
}

func newQueryHost(m *Matcher, qr *reference.Reference, assoc map[string][]reference.ID, attrThr float64) *queryHost {
	return &queryHost{
		m:       m,
		qr:      qr,
		qid:     reference.ID(m.snap.RefCount()),
		assoc:   assoc,
		attrThr: attrThr,
		cands:   make(map[reference.ID][]reference.ID),
		cmps:    make(map[string][]attrCompare),
		elems:   make(map[string]map[string]string),
	}
}

// ClassOf implements collective.Host.
func (h *queryHost) ClassOf(id reference.ID) string {
	if id == h.qid {
		return h.qr.Class
	}
	if sr, ok := h.m.snap.Ref(id); ok {
		return sr.Class
	}
	return ""
}

// Candidates implements collective.Host: blocking-index lookup over the
// reference's keys, memoized, with the reference itself removed.
func (h *queryHost) Candidates(id reference.ID) []reference.ID {
	if got, ok := h.cands[id]; ok {
		return got
	}
	var keys []string
	var class string
	if id == h.qid {
		class = h.qr.Class
		blockingKeys(h.qr, func(k string) { keys = append(keys, k) })
	} else {
		sr, ok := h.m.snap.Ref(id)
		if !ok {
			h.cands[id] = nil
			return nil
		}
		class = sr.Class
		blockingKeys(sr.detached(), func(k string) { keys = append(keys, k) })
	}
	var ids []reference.ID
	if idx := h.m.idx[class]; idx != nil && len(keys) > 0 {
		ids = idx.Candidates(keys)
	}
	out := ids[:0]
	for _, c := range ids {
		if c != id {
			out = append(out, c)
		}
	}
	h.cands[id] = out
	return out
}

// EachAssoc implements collective.Host. Person references pool coAuthor
// and emailContact under the contacts pseudo-attribute (the paper relates
// one reference's co-author to another's email contact); other classes
// emit their association attributes in sorted order.
func (h *queryHost) EachAssoc(id reference.ID, fn func(attr string, targets []reference.ID)) {
	var assoc map[string][]reference.ID
	if id == h.qid {
		assoc = h.assoc
	} else if sr, ok := h.m.snap.Ref(id); ok {
		assoc = sr.Assoc
	}
	if len(assoc) == 0 {
		return
	}
	if h.ClassOf(id) == schema.ClassPerson {
		if pooled := pooledContacts(assoc); len(pooled) > 0 {
			fn(contactsAttr, pooled)
		}
		return
	}
	attrs := make([]string, 0, len(assoc))
	for a := range assoc {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		fn(a, assoc[a])
	}
}

// pooledContacts unions a person's coAuthor and emailContact targets,
// deduplicated, in stable order (coAuthor first, as contactsOf does).
func pooledContacts(assoc map[string][]reference.ID) []reference.ID {
	co := assoc[schema.AttrCoAuthor]
	ec := assoc[schema.AttrEmailContact]
	if len(ec) == 0 {
		return co
	}
	if len(co) == 0 {
		return ec
	}
	out := make([]reference.ID, 0, len(co)+len(ec))
	seen := make(map[reference.ID]bool, len(co)+len(ec))
	for _, lists := range [2][]reference.ID{co, ec} {
		for _, id := range lists {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// AssocEvidence implements collective.Host, mirroring the offline
// builder's association wiring: author and venue similarities feed an
// article pair as real-valued evidence (with the strong-boolean back edge
// of Figure 2 where the evidence level allows), contacts are weak-boolean
// person evidence, and custom classes get conservative generic
// weak-boolean links.
func (h *queryHost) AssocEvidence(class, attr string) (string, depgraph.DepType, string, bool) {
	switch class {
	case schema.ClassArticle:
		switch attr {
		case schema.AttrAuthoredBy:
			back := ""
			if h.m.cfg.Evidence >= EvidenceArticle {
				back = simfn.EvArticle
			}
			return simfn.EvAuthors, depgraph.RealValued, back, true
		case schema.AttrPublishedIn:
			return simfn.EvVenue, depgraph.RealValued, simfn.EvArticle, true
		}
		return "", 0, "", false
	case schema.ClassPerson:
		if attr == contactsAttr && h.m.cfg.Evidence >= EvidenceContact {
			return simfn.EvContact, depgraph.WeakBoolean, "", true
		}
		return "", 0, "", false
	case schema.ClassVenue:
		return "", 0, "", false
	}
	if c, ok := h.m.sch.Class(class); ok {
		if a, ok := c.Attr(attr); ok && a.Kind == schema.Association {
			return "ga:" + attr, depgraph.WeakBoolean, "", true
		}
	}
	return "", 0, "", false
}

// WireAttrEvidence implements collective.Host: the same value-pair nodes
// and edges wireScored creates offline, scored against the matcher's
// frozen corpus statistics.
func (h *queryHost) WireAttrEvidence(g *depgraph.Graph, n *depgraph.Node, a, b reference.ID) bool {
	class := n.Class()
	cmps, ok := h.cmps[class]
	if !ok {
		cmps = comparisons(h.m.sch, class, h.m.cfg.Evidence)
		h.cmps[class] = cmps
	}
	wired := false
	for _, cmp := range cmps {
		for _, v1 := range h.atomicOf(a, cmp.attrA) {
			for _, v2 := range h.atomicOf(b, cmp.attrB) {
				x, y := v1, v2
				if cmp.swap {
					x, y = v2, v1
				}
				sim := h.m.lib.Compare(cmp.evidence, x, y)
				if sim < simfn.CandidateThreshold(cmp.evidence) {
					continue
				}
				vn := g.AddValuePair(cmp.evidence, h.elemKey(cmp.attrA, v1), h.elemKey(cmp.attrB, v2), sim)
				if vn.Sim() >= h.attrThr && vn.Status() != depgraph.Merged {
					g.MarkMerged(vn)
				}
				g.AddEdge(vn, n, depgraph.RealValued, cmp.evidence)
				if simfn.AliasEvidence(cmp.evidence) && !cmp.swap && cmp.attrA == cmp.attrB {
					g.AddEdge(n, vn, depgraph.StrongBoolean, cmp.evidence)
				}
				wired = true
			}
		}
	}
	return wired
}

func (h *queryHost) atomicOf(id reference.ID, attr string) []string {
	if id == h.qid {
		return h.qr.Atomic(attr)
	}
	if sr, ok := h.m.snap.Ref(id); ok {
		return sr.Atomic[attr]
	}
	return nil
}

func (h *queryHost) elemKey(attr, raw string) string {
	m := h.elems[attr]
	if m == nil {
		m = make(map[string]string)
		h.elems[attr] = m
	}
	if e, ok := m[raw]; ok {
		return e
	}
	e := elemPrefix(attr) + tokenizer.Normalize(raw)
	m[raw] = e
	return e
}

// Frozen implements collective.Host from the snapshot's pair decisions
// and transitive closure: a pair in the same partition is merged (sim 1
// when the closure united it without a direct merge decision), a
// constrained pair is non-merge, and a surviving pair node contributes
// its converged similarity as the floor for re-scoring.
func (h *queryHost) Frozen(a, b reference.ID) (float64, bool, bool, bool) {
	snap := h.m.snap
	n := reference.ID(snap.RefCount())
	if a < 0 || b < 0 || a >= n || b >= n {
		return 0, false, false, false
	}
	same := snap.SameEntity(a, b)
	d := snap.Pair(a, b)
	if d == nil {
		if same {
			return 1, true, false, true
		}
		return 0, false, false, false
	}
	directMerge := d.Status == depgraph.Merged.String()
	nonMerge := d.Status == depgraph.NonMerge.String()
	merged := same || directMerge
	sim := d.Sim
	if merged && !directMerge {
		sim = 1
	}
	return sim, merged, nonMerge && !same, true
}
