package recon

import (
	"context"
	"fmt"
	"io"
	"time"

	"refrecon/internal/audit"
	"refrecon/internal/depgraph"
	"refrecon/internal/obs"
	"refrecon/internal/reference"
)

// Session supports incremental reconciliation — the first future-work
// direction of §7: "an efficient incremental reconciliation approach,
// applied when new references are inserted to an already-reconciled
// dataset".
//
// A session owns a growing reference store and a persistent dependency
// graph. After each batch of added references, Reconcile extends the graph
// with the new candidate pairs and their dependencies, runs the
// propagation engine seeded with just those pairs (existing decisions are
// re-activated only when the new evidence touches them), and recomputes
// the constrained transitive closure.
//
// Incremental results can differ slightly from a from-scratch batch run:
// reference enrichment folds performed in earlier rounds are not undone,
// so evidence accumulated under an earlier, smaller view of the data keeps
// its shape. The engine's monotone scoring guarantees merges never
// regress.
//
// Sessions always run the monolithic propagation path and ignore
// Config.Shards: components drift and merge as batches arrive, so a
// per-batch re-split would forfeit the retained graph the session exists
// to keep.
type Session struct {
	rc     *Reconciler
	store  *reference.Store
	b      *builder
	g      *depgraph.Graph
	seen   int
	stats  Stats
	latest *Result
	// aud is the session-lifetime invariant auditor (nil unless
	// Config.Audit). One auditor spans every batch so the cross-phase
	// checks (monotone similarities, merged-never-demoted) also hold
	// across batch boundaries.
	aud *audit.Auditor
	// poisoned is set when a commit was cancelled after it started
	// mutating the session graph. A cancellation can land mid-propagation,
	// leaving the graph short of its fixed point; rather than reason about
	// resuming an order-dependent partial run, the next commit discards
	// the incremental state and reconciles the whole store from scratch —
	// the store itself is never touched by reconciliation, so nothing the
	// caller added is lost.
	poisoned bool
}

// NewSession returns an incremental reconciliation session over the store
// (which may already contain references; they are incorporated on the
// first Reconcile).
func (rc *Reconciler) NewSession(store *reference.Store) *Session {
	return &Session{
		rc:    rc,
		store: store,
		b:     newBuilder(store, rc.sch, rc.cfg),
	}
}

// Store returns the session's store; add new references to it between
// Reconcile calls.
func (s *Session) Store() *reference.Store { return s.store }

// Reconcile incorporates the references added since the previous call and
// returns the updated partitioning of the whole store. It is
// CommitContext with a background context.
//
// A call with no new references is a cheap no-op that returns the previous
// result: nothing is re-seeded, no phase runs, and the accumulated stats
// are untouched. The seen-cursor only advances once validation has passed,
// so a batch rejected by store.Validate is re-incorporated in full when
// Reconcile is retried after the store is repaired.
func (s *Session) Reconcile() (*Result, error) {
	return s.CommitContext(context.Background())
}

// CommitContext is Reconcile with cooperative cancellation: ctx is
// checked before each phase and at every propagation-round boundary. A
// cancelled commit returns an error wrapping both ErrCanceled and
// ctx.Err(); the session and its store stay usable — the next commit
// detects the interrupted graph, discards the incremental state, and
// reconciles the whole store from scratch, yielding the same partitions a
// never-cancelled session would have produced.
func (s *Session) CommitContext(ctx context.Context) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceled("commit", err)
	}
	if err := s.store.Validate(s.rc.sch); err != nil {
		return nil, invalidInput(err)
	}
	if s.poisoned {
		s.reset()
	}
	newRefs := s.store.All()[s.seen:]
	if len(newRefs) == 0 && s.latest != nil {
		return s.latest, nil
	}
	s.seen = s.store.Len()
	if s.rc.cfg.Audit && s.aud == nil {
		s.aud = s.rc.newAuditor()
	}
	o := s.rc.cfg.Obs
	if c := o.Counter(); c != nil {
		c.Batches.Add(1)
	}

	sp := o.Tracer().Begin("phase", "build")
	start := time.Now()
	var seed []*depgraph.Node
	build := func() { seed = s.b.incorporate(newRefs) }
	if o.Profiling() {
		obs.Do("build", build)
	} else {
		build()
	}
	if s.g == nil {
		s.g = s.b.g
	}
	s.stats.BuildTime += time.Since(start)
	sp.EndArgs(map[string]any{
		"batch": len(newRefs), "nodes": s.g.NodeCount(), "edges": s.g.EdgeCount(),
	})
	s.b.feedCounters(o.Counter())
	o.Progressor().Emit(obs.Event{Phase: "build", Final: true})
	if s.aud != nil {
		if err := s.aud.CheckGraph("build", s.g, false).Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		// The graph already holds this batch's nodes; without a propagation
		// pass its decisions are stale, so the next commit must rebuild.
		return nil, s.cancelCommit("propagate", err)
	}

	eopts := s.rc.engineOptions()
	eopts.Interrupt = ctx.Err
	eopts.Trace = o.Tracer()
	eopts.Progress = o.Progressor()

	sp = o.Tracer().Begin("phase", "propagate")
	start = time.Now()
	var engine depgraph.Stats
	run := func() { engine = s.g.Run(seed, eopts) }
	if o.Profiling() {
		obs.Do("propagate", run)
	} else {
		run()
	}
	s.stats.PropagateTime += time.Since(start)
	sp.EndArgs(map[string]any{
		"steps": engine.Steps, "merges": engine.Merges,
		"folds": engine.Folds, "rounds": engine.Rounds,
	})
	feedEngineCounters(o.Counter(), engine)
	o.Progressor().Emit(obs.Event{
		Phase: "propagate", Round: engine.Rounds,
		Steps: engine.Steps, Merges: engine.Merges, Folds: engine.Folds,
		Final: true,
	})
	if engine.Interrupted {
		return nil, s.cancelCommit("propagate", ctx.Err())
	}
	if s.aud != nil {
		if err := s.aud.CheckGraph("propagate", s.g, engine.Truncated).Err(); err != nil {
			return nil, err
		}
	}

	s.stats.CandidatePairs = s.b.candidatePairs
	s.stats.GraphNodes = s.g.NodeCount()
	s.stats.GraphEdges = s.g.EdgeCount()
	s.stats.SkippedBuckets = s.b.skippedBuckets
	s.stats.Engine.Steps += engine.Steps
	s.stats.Engine.Merges += engine.Merges
	s.stats.Engine.Folds += engine.Folds
	s.stats.Engine.Reactivate += engine.Reactivate
	s.stats.Engine.Truncated = s.stats.Engine.Truncated || engine.Truncated
	s.stats.Engine.Rounds += engine.Rounds
	if engine.QueueHighWater > s.stats.Engine.QueueHighWater {
		s.stats.Engine.QueueHighWater = engine.QueueHighWater
	}
	s.stats.Engine.RequeueReal += engine.RequeueReal
	s.stats.Engine.RequeueStrong += engine.RequeueStrong
	s.stats.Engine.RequeueWeak += engine.RequeueWeak
	s.stats.Engine.DeltaHits += engine.DeltaHits
	s.stats.Engine.AggBuilds += engine.AggBuilds
	s.stats.Engine.AggRebuilds += engine.AggRebuilds
	s.stats.NonMergeNodes = 0
	s.g.Nodes(func(n *depgraph.Node) {
		if n.Status() == depgraph.NonMerge {
			s.stats.NonMergeNodes++
		}
	})
	if err := ctx.Err(); err != nil {
		// Propagation converged but the closure never ran; s.latest is
		// still the previous batch's result. Poisoning keeps the recovery
		// story uniform: one rule, rebuild on the next commit.
		return nil, s.cancelCommit("closure", err)
	}

	spc := o.Tracer().Begin("phase", "closure")
	start = time.Now()
	res := closure(s.store, s.g, s.rc.cfg.Constraints)
	s.stats.ClosureTime += time.Since(start)
	spc.End()
	o.Progressor().Emit(obs.Event{Phase: "closure", Final: true})
	if s.aud != nil {
		if err := s.aud.CheckPartition("closure", s.store, s.g, res.Partitions, res.Assignment).Err(); err != nil {
			return nil, err
		}
		s.stats.AuditChecks = s.aud.TotalChecks
	}
	res.Stats = s.stats
	s.latest = res
	return res, nil
}

// cancelCommit marks the session for a from-scratch rebuild and returns
// the wrapped cancellation error.
func (s *Session) cancelCommit(phase string, cause error) error {
	s.poisoned = true
	if c := s.rc.cfg.Obs.Counter(); c != nil {
		c.Canceled.Add(1)
	}
	return canceled(phase, cause)
}

// reset discards the incremental state after a cancelled commit: a fresh
// builder and graph, the seen-cursor rewound to zero. The following
// commit incorporates the entire store as one batch, which is exactly a
// one-shot Reconcile — deterministic and independent of where the
// cancelled run stopped. The auditor is reset too: its cross-batch
// invariants (monotone similarity, merges never demoted) are defined
// against a graph that no longer exists.
func (s *Session) reset() {
	s.b = newBuilder(s.store, s.rc.sch, s.rc.cfg)
	s.g = nil
	s.seen = 0
	s.stats = Stats{}
	s.latest = nil
	s.aud = nil
	s.poisoned = false
}

// Poison marks the session for a from-scratch rebuild on its next commit,
// exactly as an internally cancelled commit would. Callers use it when the
// session's incremental state is known to have diverged from the store —
// the serving layer poisons after a publish failure, and crash recovery
// poisons at the point where a past run lost its graph (a recorded
// cancellation or a cold checkpoint restore) so a replayed history evolves
// identically to the live one.
func (s *Session) Poison() { s.poisoned = true }

// Poisoned reports whether the next commit will discard the incremental
// state and reconcile the whole store from scratch.
func (s *Session) Poisoned() bool { return s.poisoned }

// Latest returns the most recent result (nil before the first Reconcile).
func (s *Session) Latest() *Result { return s.latest }

// WriteDOT renders the session's dependency graph in Graphviz DOT format
// (see depgraph.Graph.WriteDOT). It errors before the first Reconcile.
func (s *Session) WriteDOT(w io.Writer, filter func(*depgraph.Node) bool) error {
	if s.g == nil {
		return fmt.Errorf("recon: WriteDOT before Reconcile")
	}
	return s.g.WriteDOT(w, filter)
}
