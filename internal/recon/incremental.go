package recon

import (
	"fmt"
	"io"
	"time"

	"refrecon/internal/audit"
	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
)

// Session supports incremental reconciliation — the first future-work
// direction of §7: "an efficient incremental reconciliation approach,
// applied when new references are inserted to an already-reconciled
// dataset".
//
// A session owns a growing reference store and a persistent dependency
// graph. After each batch of added references, Reconcile extends the graph
// with the new candidate pairs and their dependencies, runs the
// propagation engine seeded with just those pairs (existing decisions are
// re-activated only when the new evidence touches them), and recomputes
// the constrained transitive closure.
//
// Incremental results can differ slightly from a from-scratch batch run:
// reference enrichment folds performed in earlier rounds are not undone,
// so evidence accumulated under an earlier, smaller view of the data keeps
// its shape. The engine's monotone scoring guarantees merges never
// regress.
type Session struct {
	rc     *Reconciler
	store  *reference.Store
	b      *builder
	g      *depgraph.Graph
	seen   int
	stats  Stats
	latest *Result
	// aud is the session-lifetime invariant auditor (nil unless
	// Config.Audit). One auditor spans every batch so the cross-phase
	// checks (monotone similarities, merged-never-demoted) also hold
	// across batch boundaries.
	aud *audit.Auditor
}

// NewSession returns an incremental reconciliation session over the store
// (which may already contain references; they are incorporated on the
// first Reconcile).
func (rc *Reconciler) NewSession(store *reference.Store) *Session {
	return &Session{
		rc:    rc,
		store: store,
		b:     newBuilder(store, rc.sch, rc.cfg),
	}
}

// Store returns the session's store; add new references to it between
// Reconcile calls.
func (s *Session) Store() *reference.Store { return s.store }

// Reconcile incorporates the references added since the previous call and
// returns the updated partitioning of the whole store.
//
// A call with no new references is a cheap no-op that returns the previous
// result: nothing is re-seeded, no phase runs, and the accumulated stats
// are untouched. The seen-cursor only advances once validation has passed,
// so a batch rejected by store.Validate is re-incorporated in full when
// Reconcile is retried after the store is repaired.
func (s *Session) Reconcile() (*Result, error) {
	if err := s.store.Validate(s.rc.sch); err != nil {
		return nil, fmt.Errorf("recon: invalid input: %w", err)
	}
	newRefs := s.store.All()[s.seen:]
	if len(newRefs) == 0 && s.latest != nil {
		return s.latest, nil
	}
	s.seen = s.store.Len()
	if s.rc.cfg.Audit && s.aud == nil {
		s.aud = s.rc.newAuditor()
	}

	start := time.Now()
	seed := s.b.incorporate(newRefs)
	if s.g == nil {
		s.g = s.b.g
	}
	s.stats.BuildTime += time.Since(start)
	if s.aud != nil {
		if err := s.aud.CheckGraph("build", s.g, false).Err(); err != nil {
			return nil, err
		}
	}
	start = time.Now()
	engine := s.g.Run(seed, s.rc.engineOptions())
	s.stats.PropagateTime += time.Since(start)
	if s.aud != nil {
		if err := s.aud.CheckGraph("propagate", s.g, engine.Truncated).Err(); err != nil {
			return nil, err
		}
	}

	s.stats.CandidatePairs = s.b.candidatePairs
	s.stats.GraphNodes = s.g.NodeCount()
	s.stats.GraphEdges = s.g.EdgeCount()
	s.stats.SkippedBuckets = s.b.skippedBuckets
	s.stats.Engine.Steps += engine.Steps
	s.stats.Engine.Merges += engine.Merges
	s.stats.Engine.Folds += engine.Folds
	s.stats.Engine.Reactivate += engine.Reactivate
	s.stats.Engine.Truncated = s.stats.Engine.Truncated || engine.Truncated
	s.stats.Engine.DeltaHits += engine.DeltaHits
	s.stats.Engine.AggBuilds += engine.AggBuilds
	s.stats.Engine.AggRebuilds += engine.AggRebuilds
	s.stats.NonMergeNodes = 0
	s.g.Nodes(func(n *depgraph.Node) {
		if n.Status == depgraph.NonMerge {
			s.stats.NonMergeNodes++
		}
	})

	start = time.Now()
	res := closure(s.store, s.g, s.rc.cfg.Constraints)
	s.stats.ClosureTime += time.Since(start)
	if s.aud != nil {
		if err := s.aud.CheckPartition("closure", s.store, s.g, res.Partitions, res.Assignment).Err(); err != nil {
			return nil, err
		}
		s.stats.AuditChecks = s.aud.TotalChecks
	}
	res.Stats = s.stats
	s.latest = res
	return res, nil
}

// Latest returns the most recent result (nil before the first Reconcile).
func (s *Session) Latest() *Result { return s.latest }

// WriteDOT renders the session's dependency graph in Graphviz DOT format
// (see depgraph.Graph.WriteDOT). It errors before the first Reconcile.
func (s *Session) WriteDOT(w io.Writer, filter func(*depgraph.Node) bool) error {
	if s.g == nil {
		return fmt.Errorf("recon: WriteDOT before Reconcile")
	}
	return s.g.WriteDOT(w, filter)
}
