package recon

import (
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// TestSnapshotPersistRoundTrip pins the serialization contract: a decoded
// snapshot must answer every query — refs, partitions, entities, pair
// decisions, explain paths, matcher queries — identically to the original.
func TestSnapshotPersistRoundTrip(t *testing.T) {
	store := twoAccountStore()
	// An association makes the wire form exercise Assoc slices too.
	store.Add(reference.New(schema.ClassArticle).
		AddAtomic(schema.AttrTitle, "Reference Reconciliation in Complex Information Spaces").
		AddAssoc(schema.AttrAuthoredBy, 0))
	sess := New(schema.PIM(), DefaultConfig()).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	blob, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}

	if want := snapshotFingerprint(t, snap); snapshotFingerprint(t, got) != want {
		t.Errorf("decoded snapshot fingerprint differs:\nwant:\n%s\ngot:\n%s",
			want, snapshotFingerprint(t, got))
	}
	if got.Version != snap.Version || got.RefCount() != snap.RefCount() {
		t.Errorf("version/refs = %d/%d, want %d/%d",
			got.Version, got.RefCount(), snap.Version, snap.RefCount())
	}
	for _, pair := range [][2]reference.ID{{0, 1}, {0, 2}, {1, 2}, {0, 3}} {
		w, errW := snap.Explain(pair[0], pair[1])
		g, errG := got.Explain(pair[0], pair[1])
		if (errW == nil) != (errG == nil) {
			t.Fatalf("Explain(%d,%d) error mismatch: %v vs %v", pair[0], pair[1], errW, errG)
		}
		if errW == nil && w.String() != g.String() {
			t.Errorf("Explain(%d,%d) mismatch:\nwant:\n%s\ngot:\n%s",
				pair[0], pair[1], w.String(), g.String())
		}
	}

	// The decoded snapshot backs a matcher exactly like the original.
	q := Query{
		Class:  schema.ClassPerson,
		Atomic: map[string][]string{schema.AttrEmail: {"asmith@cs.example.edu"}},
	}
	wc, _, err := NewMatcher(schema.PIM(), DefaultConfig(), snap).Match(q)
	if err != nil {
		t.Fatal(err)
	}
	gc, _, err := NewMatcher(schema.PIM(), DefaultConfig(), got).Match(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(wc) != len(gc) {
		t.Fatalf("matcher candidates = %d, want %d", len(gc), len(wc))
	}
	for i := range wc {
		if wc[i].Entity.Canonical != gc[i].Entity.Canonical || wc[i].Score != gc[i].Score {
			t.Errorf("candidate %d: (%d, %.6f) vs (%d, %.6f)", i,
				gc[i].Entity.Canonical, gc[i].Score, wc[i].Entity.Canonical, wc[i].Score)
		}
	}

	// A second round trip through the decoded snapshot is stable.
	blob2, err := EncodeSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeSnapshot(blob2)
	if err != nil {
		t.Fatal(err)
	}
	if want := snapshotFingerprint(t, snap); snapshotFingerprint(t, again) != want {
		t.Error("second round trip changed the snapshot fingerprint")
	}
}

// TestSnapshotPersistResultSnapshot checks a pair-less Result snapshot
// stays pair-less after a round trip (HasPairs discriminates it from a
// session snapshot with zero pairs).
func TestSnapshotPersistResultSnapshot(t *testing.T) {
	store := twoAccountStore()
	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(store)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot(store)
	blob, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Pair(0, 1); d != nil {
		t.Errorf("Result snapshot grew pair data through the round trip: %+v", d)
	}
	if !got.SameEntity(0, 1) || got.SameEntity(0, 2) {
		t.Error("decoded Result snapshot partition queries disagree")
	}
	exp, err := got.Explain(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Same || exp.Direct != nil || len(exp.Path) != 0 {
		t.Errorf("decoded Result snapshot Explain = %+v, want Same with no pair evidence", exp)
	}
}

// TestSnapshotPersistRejectsGarbage pins the error contract on corrupt
// input.
func TestSnapshotPersistRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("not a gob stream")); err == nil {
		t.Error("decoding garbage should error")
	}
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("decoding empty input should error")
	}
}
