package recon

import (
	"fmt"
	"sort"
	"testing"

	"refrecon/internal/datagen/pim"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// canonPartitions renders a result's partitions into one canonical,
// comparable string: classes sorted, members sorted within each partition,
// partitions sorted lexicographically within each class.
func canonPartitions(res *Result) string {
	classes := make([]string, 0, len(res.Partitions))
	for c := range res.Partitions {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := ""
	for _, c := range classes {
		parts := make([]string, 0, len(res.Partitions[c]))
		for _, p := range res.Partitions[c] {
			ids := make([]int, len(p))
			for i, id := range p {
				ids[i] = int(id)
			}
			sort.Ints(ids)
			parts = append(parts, fmt.Sprint(ids))
		}
		sort.Strings(parts)
		out += c + ": " + fmt.Sprint(parts) + "\n"
	}
	return out
}

// comparableStats strips the informational fields (wall-clock timings) so
// the rest of a Stats value can be compared bit for bit.
func comparableStats(s Stats) Stats {
	s.BuildTime, s.PropagateTime, s.ClosureTime = 0, 0, 0
	return s
}

// runWithShards reconciles a fresh clone of the store at the given shard
// count with the invariant auditor on.
func runWithShards(t *testing.T, store *reference.Store, shards int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Audit = true
	cfg.Shards = shards
	res, err := New(schema.PIM(), cfg).Reconcile(cloneStore(store))
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return res
}

// TestShardEquivalenceOnDatasets pins the sharded execution contract on
// every generated corpus (PIM A–D and Cora):
//
//   - Shards 2, 4, and 8 are bit-identical to each other — partitions AND
//     the full deterministic Stats. Components and the serial boundary
//     sync are shard-count-independent; grouping is pure scheduling.
//   - Against the monolithic run (Shards == 1), every build-shape stat is
//     identical (the graph is built once, before the split), and the final
//     decisions agree on at least 99.9% of reference pairs. Exact equality
//     is NOT guaranteed: the engine's enrichment-fold topology depends on
//     evaluation order, and count-based boolean evidence dedups along that
//     topology, so a component-parallel schedule is a legal DepGraph fixed
//     point that can differ from the single-queue one in a handful of
//     threshold-straddling pairs — the same contract the incremental
//     session pins (see DESIGN.md, "Sharded reconciliation").
//
// The invariant auditor (CheckGraph per component, CheckSharding, the
// frontier superset oracle, CheckPartition) runs throughout every run.
func TestShardEquivalenceOnDatasets(t *testing.T) {
	boundarySeen := false
	for name, store := range auditDatasets(t) {
		t.Run(name, func(t *testing.T) {
			legacy := runWithShards(t, store, 1)
			var ref *Result
			for _, k := range []int{2, 4, 8} {
				res := runWithShards(t, store, k)
				if res.Stats.Shard.Components == 0 {
					t.Fatalf("shards=%d: no components recorded", k)
				}
				if res.Stats.Shard.BoundaryLinks > 0 {
					boundarySeen = true
				}
				if ref == nil {
					ref = res
					continue
				}
				if canonPartitions(ref) != canonPartitions(res) {
					t.Fatalf("partitions differ between shards=2 and shards=%d", k)
				}
				a, b := comparableStats(ref.Stats), comparableStats(res.Stats)
				// The group count is the one knob that varies with k.
				a.Shard.Shards, b.Shard.Shards = 0, 0
				if a != b {
					t.Errorf("stats differ between sharded runs:\n  shards=2: %+v\n  shards=%d: %+v", a, k, b)
				}
			}
			// Build shape matches the legacy run exactly: the global graph is
			// constructed once, identically, and only then split.
			l, s := legacy.Stats, ref.Stats
			if l.CandidatePairs != s.CandidatePairs || l.GraphNodes != s.GraphNodes ||
				l.GraphEdges != s.GraphEdges || l.SkippedBuckets != s.SkippedBuckets {
				t.Errorf("build-shape stats diverged:\n  legacy:  %+v\n  sharded: %+v", l, s)
			}
			// Decision agreement with the monolithic schedule is near-total.
			agree, total := pairAgreement(legacy, ref, store.Len())
			if float64(agree) < 0.999*float64(total) {
				t.Errorf("pairwise agreement with monolithic run %d/%d below tolerance", agree, total)
			}
		})
	}
	if !boundarySeen {
		t.Error("no dataset produced boundary links; the frontier path went unexercised")
	}
}

// TestShardSessionsMonolithic pins the Session contract: incremental
// sessions ignore Config.Shards entirely — a session configured with any
// shard count replays bit-identically to one at Shards == 1, and its final
// merges refine the sharded one-shot run of the same data.
func TestShardSessionsMonolithic(t *testing.T) {
	g, err := pim.Generate(pim.DatasetB(0.04))
	if err != nil {
		t.Fatal(err)
	}
	store := g.Store
	cuts := validCuts(store)
	if len(cuts) == 0 {
		t.Fatal("no self-contained cut points")
	}
	chosen := []int{cuts[len(cuts)/2]}

	session := func(shards int) *Result {
		cfg := DefaultConfig()
		cfg.Audit = true
		cfg.Shards = shards
		inc := reference.NewStore()
		sess := New(schema.PIM(), cfg).NewSession(inc)
		next := 0
		for i, r := range store.All() {
			inc.Add(cloneRef(r))
			if next < len(chosen) && i+1 == chosen[next] {
				next++
				if _, err := sess.Reconcile(); err != nil {
					t.Fatalf("shards=%d batch at %d: %v", shards, i+1, err)
				}
			}
		}
		res, err := sess.Reconcile()
		if err != nil {
			t.Fatalf("shards=%d final batch: %v", shards, err)
		}
		return res
	}

	mono, sharded := session(1), session(4)
	if canonPartitions(mono) != canonPartitions(sharded) {
		t.Fatal("session results vary with Config.Shards; sessions must be monolithic")
	}
	if comparableStats(mono.Stats) != comparableStats(sharded.Stats) {
		t.Fatalf("session stats vary with Config.Shards:\n  shards=1: %+v\n  shards=4: %+v",
			comparableStats(mono.Stats), comparableStats(sharded.Stats))
	}
	if sharded.Stats.Shard != (ShardStats{}) {
		t.Fatalf("session recorded shard stats %+v; the shard layer must not run", sharded.Stats.Shard)
	}

	// Coherence with the sharded one-shot run on the same data: near-total
	// pairwise agreement (the one-shot sharded schedule and the incremental
	// monolithic schedule are both legal fixed points).
	oneShot := runWithShards(t, store, 4)
	agree, total := pairAgreement(oneShot, sharded, store.Len())
	if float64(agree) < 0.999*float64(total) {
		t.Errorf("session vs one-shot sharded agreement %d/%d below tolerance", agree, total)
	}
}

// boundaryTrafficStore builds a corpus engineered to force cross-shard
// frontier traffic: persons whose pairwise similarity sits below the merge
// threshold until their articles reconcile — the person components and the
// article components are distinct by construction (components never span
// classes), so the article→person association evidence must cross the
// boundary, and the resulting person merges must feed back as co-author
// contact evidence.
func boundaryTrafficStore() *reference.Store {
	store := reference.NewStore()
	person := func(name, email string) reference.ID {
		r := reference.New(schema.ClassPerson).AddAtomic(schema.AttrName, name)
		if email != "" {
			r.AddAtomic(schema.AttrEmail, email)
		}
		return store.Add(r)
	}
	article := func(title string, authors ...reference.ID) reference.ID {
		r := reference.New(schema.ClassArticle).AddAtomic(schema.AttrTitle, title)
		for _, a := range authors {
			r.AddAssoc(schema.AttrAuthoredBy, a)
		}
		return store.Add(r)
	}
	// Two mentions of the same author, names alone too weak to merge.
	w1 := person("Jennifer Widom", "widom@stanford.edu")
	w2 := person("Widom, J.", "")
	// A distinctive co-author appearing twice.
	h1 := person("Hector Garcia-Molina", "hector@stanford.edu")
	h2 := person("Garcia-Molina, Hector", "hector@stanford.edu")
	// The same article mentioned twice with near-identical titles; its
	// reconciliation aligns the author lists.
	article("Managing semistructured data with Lore", w1, h1)
	article("Managing semi-structured data with Lore", w2, h2)
	// An unrelated pair that merges on its own, in a separate component.
	person("Moshe Vardi", "vardi@rice.edu")
	person("Vardi, Moshe", "vardi@rice.edu")
	return store
}

// TestShardBoundaryTraffic forces evidence across component boundaries and
// checks the frontier carried it: the cross-component merges happen, and
// the sync statistics show real boundary work.
func TestShardBoundaryTraffic(t *testing.T) {
	store := boundaryTrafficStore()
	legacy := runWithShards(t, store, 1)
	res := runWithShards(t, store, 4)
	if canonPartitions(res) != canonPartitions(legacy) {
		t.Fatalf("partitions differ from monolithic run:\n legacy:\n%s sharded:\n%s",
			canonPartitions(legacy), canonPartitions(res))
	}
	if !res.SameEntity(0, 1) {
		t.Error("association evidence failed to merge the Widom mentions")
	}
	sh := res.Stats.Shard
	if sh.Components < 2 {
		t.Fatalf("expected multiple components, got %d", sh.Components)
	}
	if sh.BoundaryLinks == 0 {
		t.Error("no boundary links despite cross-class associations")
	}
	if sh.BoundaryUpdates == 0 {
		t.Error("no boundary updates; the frontier never carried evidence")
	}
	if sh.FrontierRounds < 2 {
		t.Errorf("frontier rounds = %d, want >= 2 (sync, re-run, drain)", sh.FrontierRounds)
	}
}
