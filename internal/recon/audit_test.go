package recon

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"refrecon/internal/audit"
	"refrecon/internal/datagen/cora"
	"refrecon/internal/datagen/pim"
	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

// auditDatasets enumerates the generated corpora the audit tests sweep.
func auditDatasets(t *testing.T) map[string]*reference.Store {
	t.Helper()
	out := make(map[string]*reference.Store)
	for name, p := range map[string]pim.Profile{
		"pimA": pim.DatasetA(0.03),
		"pimB": pim.DatasetB(0.03),
		"pimC": pim.DatasetC(0.03),
		"pimD": pim.DatasetD(0.03),
	} {
		g, err := pim.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = g.Store
	}
	g, err := cora.Generate(cora.Default(0.05))
	if err != nil {
		t.Fatal(err)
	}
	out["cora"] = g.Store
	return out
}

// TestAuditCleanOnDatasets runs the full algorithm with the invariant
// auditor enabled on every generated dataset: zero violations expected, at
// every phase boundary.
func TestAuditCleanOnDatasets(t *testing.T) {
	for name, store := range auditDatasets(t) {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Audit = true
			res, err := New(schema.PIM(), cfg).Reconcile(store)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.AuditChecks == 0 {
				t.Fatal("audit mode evaluated no checks")
			}
		})
	}
}

// TestAuditCleanWithoutConstraints covers the constraint-free auditor
// branch (merged pairs must then land in one partition).
func TestAuditCleanWithoutConstraints(t *testing.T) {
	g, err := pim.Generate(pim.DatasetB(0.04))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Audit = true
	cfg.Constraints = false
	if _, err := New(schema.PIM(), cfg).Reconcile(g.Store); err != nil {
		t.Fatal(err)
	}
}

// cloneRef deep-copies a reference so a second store can replay the same
// data (IDs are preserved by adding clones in the original order).
func cloneRef(r *reference.Reference) *reference.Reference {
	c := reference.New(r.Class)
	c.Source = r.Source
	c.Entity = r.Entity
	for _, a := range r.AtomicAttrs() {
		for _, v := range r.Atomic(a) {
			c.AddAtomic(a, v)
		}
	}
	for _, a := range r.AssocAttrs() {
		for _, tgt := range r.Assoc(a) {
			c.AddAssoc(a, tgt)
		}
	}
	return c
}

// validCuts returns the batch boundaries at which the reference prefix is
// self-contained: no association in [0, cut) points at or past cut. Only
// such prefixes pass store.Validate mid-session.
func validCuts(store *reference.Store) []int {
	maxTarget := -1
	var cuts []int
	for i, r := range store.All() {
		for _, a := range r.AssocAttrs() {
			for _, tgt := range r.Assoc(a) {
				if int(tgt) > maxTarget {
					maxTarget = int(tgt)
				}
			}
		}
		if cut := i + 1; maxTarget < cut && cut < store.Len() {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// replayInBatches reruns the store through an incremental session split at
// the given cut points, with the auditor on, and returns the final result.
func replayInBatches(t *testing.T, store *reference.Store, cuts []int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Audit = true
	inc := reference.NewStore()
	sess := New(schema.PIM(), cfg).NewSession(inc)
	next := 0
	for i, r := range store.All() {
		inc.Add(cloneRef(r))
		if next < len(cuts) && i+1 == cuts[next] {
			next++
			if _, err := sess.Reconcile(); err != nil {
				t.Fatalf("batch ending at %d: %v", i+1, err)
			}
		}
	}
	res, err := sess.Reconcile()
	if err != nil {
		t.Fatalf("final batch: %v", err)
	}
	return res
}

// pairAgreement counts pairwise same-entity agreement between two results
// over n references.
func pairAgreement(a, b *Result, n int) (agree, total int) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if a.SameEntity(reference.ID(i), reference.ID(j)) == b.SameEntity(reference.ID(i), reference.ID(j)) {
				agree++
			}
		}
	}
	return agree, total
}

// TestDifferentialIncrementalVsBatch is the randomized differential
// harness: every generated dataset is reconciled once as a batch and once
// through an incremental session split at randomly chosen (deterministic
// seed) self-contained cut points, with the invariant auditor running at
// every phase boundary of the session. The incremental merges must be a
// superset-consistent refinement of the batch merges — whatever the batch
// run joined stays joined — and overall pairwise agreement must be
// near-total (enrichment folds may add a handful of extra joins).
func TestDifferentialIncrementalVsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	datasets := auditDatasets(t)
	names := make([]string, 0, len(datasets))
	for name := range datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		store := datasets[name]
		t.Run(name, func(t *testing.T) {
			batch, err := New(schema.PIM(), DefaultConfig()).Reconcile(store)
			if err != nil {
				t.Fatal(err)
			}
			cuts := validCuts(store)
			if len(cuts) == 0 {
				t.Fatalf("no self-contained cut points in %d refs", store.Len())
			}
			// Two random cut points per trial, two trials per dataset.
			for trial := 0; trial < 2; trial++ {
				a, b := cuts[rng.Intn(len(cuts))], cuts[rng.Intn(len(cuts))]
				if a > b {
					a, b = b, a
				}
				chosen := []int{a}
				if b != a {
					chosen = append(chosen, b)
				}
				inc := replayInBatches(t, store, chosen)
				if rep := audit.CheckSuperset("incremental-vs-batch", batch.Assignment, inc.Assignment); !rep.Ok() {
					var msgs []string
					for i, v := range rep.Violations {
						if i == 3 {
							msgs = append(msgs, "...")
							break
						}
						msgs = append(msgs, v.String())
					}
					t.Errorf("cuts %v: batch merges lost incrementally: %s", chosen, strings.Join(msgs, "; "))
				}
				agree, total := pairAgreement(batch, inc, store.Len())
				if float64(agree) < 0.999*float64(total) {
					t.Errorf("cuts %v: pairwise agreement %d/%d below tolerance", chosen, agree, total)
				}
			}
		})
	}
}

// sessionFixture starts an audited session over a store seeded with a few
// distinctive persons and reconciles the first batch.
func sessionFixture(t *testing.T) (*Session, *reference.Store, map[string]reference.ID) {
	t.Helper()
	store := reference.NewStore()
	ids := make(map[string]reference.ID)
	add := func(label, name, email string) {
		r := reference.New(schema.ClassPerson)
		r.AddAtomic(schema.AttrName, name)
		r.AddAtomic(schema.AttrEmail, email)
		ids[label] = store.Add(r)
	}
	add("widom1", "Jennifer Widom", "widom@stanford.edu")
	add("widom2", "Widom, J.", "widom@stanford.edu")
	add("hector", "Hector Garcia-Molina", "hector@stanford.edu")
	add("vardi", "Moshe Vardi", "vardi@rice.edu")
	cfg := DefaultConfig()
	cfg.Audit = true
	sess := New(schema.PIM(), cfg).NewSession(store)
	if _, err := sess.Reconcile(); err != nil {
		t.Fatal(err)
	}
	return sess, store, ids
}

// TestSessionEmptyBatchNoOp locks the empty-batch fix: a Reconcile call
// with no new references must return the previous result unchanged — same
// value, no re-seeded engine work, no accumulated stats or timings.
func TestSessionEmptyBatchNoOp(t *testing.T) {
	sess, _, _ := sessionFixture(t)
	first := sess.Latest()
	again, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("empty batch built a new result")
	}
	if again.Stats != first.Stats {
		t.Fatalf("empty batch skewed stats:\n  before %+v\n  after  %+v", first.Stats, again.Stats)
	}
	if again.Stats.Engine.Steps != first.Stats.Engine.Steps {
		t.Fatal("empty batch re-ran the engine")
	}
}

// TestSessionRetryAfterValidateFailure locks the seen-cursor fix: a batch
// rejected by store.Validate must be incorporated in full when Reconcile is
// retried after the store is repaired, not silently stranded.
func TestSessionRetryAfterValidateFailure(t *testing.T) {
	sess, store, ids := sessionFixture(t)

	// The bad batch: a duplicate of an existing person plus an article
	// whose author link points one past the end of the store.
	dup := reference.New(schema.ClassPerson)
	dup.AddAtomic(schema.AttrName, "Jennifer Widom")
	dup.AddAtomic(schema.AttrEmail, "widom@stanford.edu")
	dupID := store.Add(dup)
	art := reference.New(schema.ClassArticle)
	art.AddAtomic(schema.AttrTitle, "Dangling reference resolution")
	missing := reference.ID(store.Len() + 1)
	art.AddAssoc(schema.AttrAuthoredBy, missing)
	store.Add(art)

	if _, err := sess.Reconcile(); err == nil {
		t.Fatal("expected a validation error for the dangling author link")
	}

	// Repair: add the missing author target (and its predecessor so the id
	// lands where the article points).
	for store.Len() <= int(missing) {
		store.Add(reference.New(schema.ClassPerson).AddAtomic(schema.AttrName, "Filler Person"))
	}
	res, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate from the failed batch must have been incorporated on
	// retry: it merges with the original Widom references.
	if !res.SameEntity(ids["widom1"], dupID) {
		t.Fatal("reference from the failed batch was stranded (never incorporated on retry)")
	}
}

// TestSessionBatchOfAlreadyMerged feeds a batch consisting entirely of
// duplicates of already-merged references and checks the batch-run
// refinement property still holds.
func TestSessionBatchOfAlreadyMerged(t *testing.T) {
	sess, store, ids := sessionFixture(t)
	if !sess.Latest().SameEntity(ids["widom1"], ids["widom2"]) {
		t.Fatal("setup: widom mentions should merge in round 1")
	}
	d1 := reference.New(schema.ClassPerson)
	d1.AddAtomic(schema.AttrName, "Jennifer Widom")
	d1.AddAtomic(schema.AttrEmail, "widom@stanford.edu")
	id1 := store.Add(d1)
	d2 := reference.New(schema.ClassPerson)
	d2.AddAtomic(schema.AttrName, "Hector Garcia-Molina")
	d2.AddAtomic(schema.AttrEmail, "hector@stanford.edu")
	id2 := store.Add(d2)

	res, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameEntity(ids["widom1"], id1) || !res.SameEntity(ids["hector"], id2) {
		t.Fatal("duplicates of merged references should join their entities")
	}
	batch, err := New(schema.PIM(), DefaultConfig()).Reconcile(cloneStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if rep := audit.CheckSuperset("already-merged", batch.Assignment, res.Assignment); !rep.Ok() {
		t.Fatalf("refinement property violated: %v", rep.Violations)
	}
}

// TestSessionInterleavedConstraintMarks adds an article whose co-author
// constraint splits a pair merged in an earlier round: the constraint must
// win, the auditor must stay clean across the merged-to-non-merge
// transition, and the result must match the batch run on the same data.
func TestSessionInterleavedConstraintMarks(t *testing.T) {
	sess, store, ids := sessionFixture(t)
	if !sess.Latest().SameEntity(ids["widom1"], ids["widom2"]) {
		t.Fatal("setup: widom mentions should merge in round 1")
	}

	// Round 2: one article listing both widom mentions as distinct
	// co-authors (constraint 1 of §5.3).
	art := reference.New(schema.ClassArticle)
	art.AddAtomic(schema.AttrTitle, "On the impossibility of self-coauthorship")
	art.AddAssoc(schema.AttrAuthoredBy, ids["widom1"])
	art.AddAssoc(schema.AttrAuthoredBy, ids["widom2"])
	store.Add(art)

	res, err := sess.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if res.SameEntity(ids["widom1"], ids["widom2"]) {
		t.Fatal("co-author constraint must separate the pair it marks")
	}
	batch, err := New(schema.PIM(), DefaultConfig()).Reconcile(cloneStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.SameEntity(ids["widom1"], ids["widom2"]), batch.SameEntity(ids["widom1"], ids["widom2"]); got != want {
		t.Fatalf("incremental decision %v disagrees with batch %v", got, want)
	}
}

// cloneStore replays every reference into a fresh store (IDs preserved).
func cloneStore(store *reference.Store) *reference.Store {
	out := reference.NewStore()
	for _, r := range store.All() {
		out.Add(cloneRef(r))
	}
	return out
}

// TestAuditCatchesCorruption end-to-end: corrupting the session graph
// between batches must turn the next Reconcile into an audit error rather
// than a silently wrong partition.
func TestAuditCatchesCorruption(t *testing.T) {
	sess, store, _ := sessionFixture(t)
	corrupted := false
	sess.g.Nodes(func(n *depgraph.Node) {
		if !corrupted && n.Kind() == depgraph.RefPair && n.Status() == depgraph.Merged {
			n.SetSim(1.5)
			corrupted = true
		}
	})
	if !corrupted {
		t.Fatal("setup: no merged pair to corrupt")
	}
	store.Add(reference.New(schema.ClassPerson).AddAtomic(schema.AttrName, "New Arrival"))
	_, err := sess.Reconcile()
	if err == nil || !strings.Contains(err.Error(), "graph/sim-range") {
		t.Fatalf("expected an audit sim-range error, got %v", err)
	}
}
