package audit_test

import (
	"testing"

	"refrecon/internal/depgraph"
)

// Mutation edge-case tests for the columnar storage layer: each scenario
// drives the graph through a structurally awkward mutation sequence —
// enrichment folds, span relocation, aggregate patches — and then asserts
// the full invariant battery via the auditor's CheckGraph, so a storage
// bug surfaces as a named invariant violation rather than a wrong score.

func enrichOptions() depgraph.Options {
	o := testOptions()
	o.Enrich = true
	return o
}

// TestMutationFoldedPairReAdded removes a node through an enrichment fold,
// then re-adds the same reference pair with fresh evidence in a later
// session batch — exercising the eager reclamation of the packed-pair
// index entry (a stale entry would alias the dead node) and the maintained
// aggregates across the re-add + re-fold cycle.
func TestMutationFoldedPairReAdded(t *testing.T) {
	g := depgraph.New()
	n01 := g.AddRefPair(0, 1, "Person")
	n12 := g.AddRefPair(1, 2, "Person")
	n02 := g.AddRefPair(0, 2, "Person")
	strong := g.AddValuePair("name", "n:a", "n:a2", 0.95)
	weak1 := g.AddValuePair("name", "n:b", "n:b2", 0.3)
	weak2 := g.AddValuePair("name", "n:c", "n:c2", 0.3)
	g.AddEdge(strong, n01, depgraph.RealValued, "name")
	g.AddEdge(weak1, n12, depgraph.RealValued, "name")
	g.AddEdge(weak2, n02, depgraph.RealValued, "name")

	aud := auditorFor()
	g.Run([]*depgraph.Node{n01, n12, n02}, enrichOptions())
	if rep := aud.CheckGraph("run1", g, false); !rep.Ok() {
		t.Fatalf("after first run: %v", rep.Err())
	}
	if n01.Status() != depgraph.Merged {
		t.Fatalf("(0,1) should merge at sim %.2f", n01.Sim())
	}
	if n12.Alive() {
		t.Fatal("(1,2) should have been folded into (0,2)")
	}
	if g.LookupRefPair(1, 2) != nil {
		t.Fatal("dead pair (1,2) must leave the packed-pair index")
	}

	// Later session batch: the same pair arrives again with new evidence.
	// The re-added node must be a fresh live node, and the second run's
	// re-enrichment folds it away again, transferring the new evidence.
	n12b := g.AddRefPair(1, 2, "Person")
	if n12b == n12 || !n12b.Alive() {
		t.Fatal("re-added pair must be a fresh live node")
	}
	fresh := g.AddValuePair("name", "n:d", "n:d2", 0.4)
	g.AddEdge(fresh, n12b, depgraph.RealValued, "name")
	before := n02.InDegree()

	g.Run([]*depgraph.Node{n12b}, enrichOptions())
	if rep := aud.CheckGraph("run2", g, false); !rep.Ok() {
		t.Fatalf("after re-add run: %v", rep.Err())
	}
	if n12b.Alive() {
		t.Fatal("re-added (1,2) should fold into (0,2) again")
	}
	if n02.InDegree() != before+1 {
		t.Fatalf("(0,2) should inherit the new evidence edge: in-degree %d, want %d",
			n02.InDegree(), before+1)
	}
}

// TestMutationEdgeDedupAcrossRelocation grows one node's in-adjacency past
// the inline span capacity so it relocates into the arena's overflow tail,
// then re-adds every earlier edge: each must still be recognized as a
// duplicate (the dedup identity is global, not tied to the span's storage
// location), and new edges must keep inserting cleanly.
func TestMutationEdgeDedupAcrossRelocation(t *testing.T) {
	g := depgraph.New()
	m := g.AddRefPair(0, 1, "Person")
	var evs []*depgraph.Node
	for i := 0; i < 7; i++ {
		n := g.AddValuePair("name", "n:x", "n:y"+string(rune('a'+i)), 0.6)
		if !g.AddEdge(n, m, depgraph.RealValued, "name") {
			t.Fatalf("edge %d should be new", i)
		}
		evs = append(evs, n)
	}
	seed := []*depgraph.Node{m}
	aud := auditorFor()
	g.Run(seed, testOptions()) // turns on maintained aggregates
	if rep := aud.CheckGraph("run", g, false); !rep.Ok() {
		t.Fatalf("after run: %v", rep.Err())
	}

	for i, n := range evs {
		if g.AddEdge(n, m, depgraph.RealValued, "name") {
			t.Fatalf("edge %d re-add should be a duplicate after relocation", i)
		}
	}
	if m.InDegree() != 7 {
		t.Fatalf("in-degree %d, want 7", m.InDegree())
	}
	extra := g.AddValuePair("name", "n:x", "n:z", 0.6)
	if !g.AddEdge(extra, m, depgraph.RealValued, "name") {
		t.Fatal("new edge after relocation should insert")
	}
	if rep := aud.CheckGraph("post-mutate", g, false); !rep.Ok() {
		t.Fatalf("after mutations: %v", rep.Err())
	}
}

// TestMutationAggregateAfterFoldEdgeLoss drives a fold that removes a node
// holding an out-edge into a value node: the value node loses an in-edge
// source (aggOnDropSource) and gains the rewired one, and its maintained
// evidence aggregate must still equal a fresh scan — CheckGraph's
// aggregate-divergence probe is the assertion. A follow-up status flip on
// the absorbing node re-patches the same aggregate.
func TestMutationAggregateAfterFoldEdgeLoss(t *testing.T) {
	g := depgraph.New()
	n01 := g.AddRefPair(0, 1, "Person")
	n12 := g.AddRefPair(1, 2, "Person")
	n02 := g.AddRefPair(0, 2, "Person")
	strong := g.AddValuePair("name", "n:a", "n:a2", 0.95)
	shared := g.AddValuePair("name", "n:s", "n:s2", 0.3)
	g.AddEdge(strong, n01, depgraph.RealValued, "name")
	// Both directions, like the builder's alias learning: the fold must
	// rewire l's out-edge into shared, costing shared its in-edge from l.
	g.AddEdge(shared, n12, depgraph.RealValued, "name")
	g.AddEdge(n12, shared, depgraph.StrongBoolean, "name")
	g.AddEdge(shared, n02, depgraph.RealValued, "name")

	aud := auditorFor()
	g.Run([]*depgraph.Node{n01, n12, n02}, enrichOptions())
	if rep := aud.CheckGraph("run", g, false); !rep.Ok() {
		t.Fatalf("after run: %v", rep.Err())
	}
	if n12.Alive() {
		t.Fatal("(1,2) should have folded into (0,2)")
	}
	foundRewired := false
	for _, e := range shared.In() {
		if !e.From.Alive() {
			t.Fatalf("dead in-edge source %s survived the fold", e.From.Key())
		}
		if e.From == n02 && e.Dep == depgraph.StrongBoolean {
			foundRewired = true
		}
	}
	if !foundRewired {
		t.Fatal("fold should rewire (1,2)->shared onto (0,2)->shared")
	}

	// Status flip on the absorbing node patches shared's aggregate again;
	// the auditor proves maintained == fresh either way.
	g.MarkNonMerge(n02)
	if rep := aud.CheckGraph("post-nonmerge", g, false); !rep.Ok() {
		t.Fatalf("after MarkNonMerge: %v", rep.Err())
	}
}
