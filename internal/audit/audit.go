// Package audit implements a structural invariant auditor for the
// reconciliation engine. The perf work on the dependency graph (parallel
// construction, delta-maintained evidence aggregates, incremental sessions)
// rests on invariants that are easy to violate silently: node similarities
// must stay in [0,1] and grow monotonically, merged decisions must never be
// demoted, memoized evidence digests must equal a fresh scan of the
// in-edges, and the final partitioning must honor every non-merge
// constraint. The auditor re-derives each of those properties from first
// principles after any engine phase and reports every violation, so a
// regression surfaces in CI (or under `reconcile -audit`) instead of in a
// production partition.
//
// An Auditor is stateful: it remembers each node's similarity and status at
// the previous checkpoint, which is what lets it prove the *cross-phase*
// invariants (monotone scores, merged-never-demoted) that a single snapshot
// cannot see. Use one Auditor per engine/session lifetime and call its
// Check methods at phase boundaries.
package audit

import (
	"fmt"
	"math"
	"strings"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
	"refrecon/internal/shard"
)

// Violation is one invariant breach.
type Violation struct {
	// Check names the invariant, e.g. "graph/sim-range".
	Check string
	// Node is the offending node key (or reference/partition description).
	Node string
	// Detail explains the breach.
	Detail string
}

func (v Violation) String() string {
	if v.Node == "" {
		return v.Check + ": " + v.Detail
	}
	return v.Check + " [" + v.Node + "]: " + v.Detail
}

// Report collects the outcome of one audit pass.
type Report struct {
	// Phase labels the checkpoint ("build", "propagate", "closure", ...).
	Phase string
	// Checks counts the individual assertions evaluated.
	Checks int
	// Violations lists every breached assertion.
	Violations []Violation
}

// Ok reports whether the pass found no violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil when the pass is clean, or an error summarizing up to
// five violations.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: phase %q: %d invariant violation(s)", r.Phase, len(r.Violations))
	for i, v := range r.Violations {
		if i == 5 {
			b.WriteString("; ...")
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

func (r *Report) check() { r.Checks++ }

func (r *Report) violate(check, node, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Check:  check,
		Node:   node,
		Detail: fmt.Sprintf(format, args...),
	})
}

// snapshot is the per-node memory that powers the cross-phase checks.
type snapshot struct {
	sim      float64
	merged   bool
	nonMerge bool
}

// Auditor checks engine invariants at phase boundaries. The zero value is
// usable; configure MergeThreshold and Constraints to enable the checks
// that depend on them.
type Auditor struct {
	// MergeThreshold returns the merge threshold per node (the same
	// function the engine ran with). When nil the merged-above-threshold
	// check is skipped.
	MergeThreshold func(*depgraph.Node) float64
	// Constraints mirrors the engine configuration: when true, CheckPartition
	// requires every non-merge pair to land in different partitions.
	Constraints bool
	// TotalChecks accumulates Report.Checks across every pass.
	TotalChecks int

	prev map[string]snapshot
}

// New returns an Auditor with the given engine configuration.
func New(mergeThreshold func(*depgraph.Node) float64, constraints bool) *Auditor {
	return &Auditor{MergeThreshold: mergeThreshold, Constraints: constraints}
}

// CheckGraph audits the dependency graph's structural invariants:
//
//   - every edge endpoint is a live node and each edge is indexed on the
//     side it was walked from;
//   - the per-side edge sums both equal the graph's edge count;
//   - every similarity is non-NaN and in [0,1]; non-merge nodes sit at 0;
//   - every Merged node's similarity clears its merge threshold;
//   - every maintained evidence aggregate equals a fresh scan of the
//     node's in-edges (the delta-scoring contract);
//   - against the previous checkpoint: similarities never decreased, a
//     Merged node was never demoted (it may only turn NonMerge under a
//     constraint fold), and a NonMerge node stayed NonMerge.
//
// truncated relaxes the demotion check for runs that hit the MaxSteps
// safety net, where re-seeded nodes can legitimately be left mid-flight.
// Cost is one full scan of nodes and edges plus one in-edge scan per
// maintained aggregate.
func (a *Auditor) CheckGraph(phase string, g *depgraph.Graph, truncated bool) *Report {
	r := &Report{Phase: phase}
	next := make(map[string]snapshot, len(a.prev))
	inSum, outSum := 0, 0
	g.Nodes(func(n *depgraph.Node) {
		key := n.Key()

		r.check()
		if math.IsNaN(n.Sim()) || n.Sim() < 0 || n.Sim() > 1 {
			r.violate("graph/sim-range", key, "similarity %v outside [0,1]", n.Sim())
		}
		r.check()
		if n.Kind() == depgraph.RefPair && (n.RefA() < 0 || n.RefB() <= n.RefA()) {
			r.violate("graph/refpair-order", key, "reference pair (%d,%d) not canonical", n.RefA(), n.RefB())
		}
		r.check()
		if n.Status() == depgraph.NonMerge && n.Sim() != 0 {
			r.violate("graph/nonmerge-sim", key, "non-merge node has similarity %v", n.Sim())
		}
		if a.MergeThreshold != nil && n.Status() == depgraph.Merged {
			r.check()
			if thr := a.MergeThreshold(n); n.Sim() < thr {
				r.violate("graph/merged-below-threshold", key, "merged at similarity %v < threshold %v", n.Sim(), thr)
			}
		}

		inSum += n.InDegree()
		outSum += n.OutDegree()
		for _, e := range n.In() {
			r.check()
			if e.To != n {
				r.violate("graph/edge-endpoint", key, "in-edge from %s targets %s", e.From.Key(), e.To.Key())
			}
			r.check()
			if !e.From.Alive() {
				r.violate("graph/edge-liveness", key, "in-edge from dead node %s", e.From.Key())
			}
		}
		for _, e := range n.Out() {
			r.check()
			if e.From != n {
				r.violate("graph/edge-endpoint", key, "out-edge to %s claims source %s", e.To.Key(), e.From.Key())
			}
			r.check()
			if !e.To.Alive() {
				r.violate("graph/edge-liveness", key, "out-edge to dead node %s", e.To.Key())
			}
		}

		r.check()
		if msg := n.CheckAggregate(); msg != "" {
			r.violate("graph/aggregate-divergence", key, "%s", msg)
		}

		if p, ok := a.prev[key]; ok {
			r.check()
			if n.Sim() < p.sim && n.Status() != depgraph.NonMerge {
				r.violate("graph/sim-monotone", key, "similarity regressed %v -> %v", p.sim, n.Sim())
			}
			r.check()
			if p.merged && n.Status() != depgraph.Merged && n.Status() != depgraph.NonMerge && !truncated {
				r.violate("graph/merged-demoted", key, "previously merged node now %v", n.Status())
			}
			r.check()
			if p.nonMerge && n.Status() != depgraph.NonMerge {
				r.violate("graph/nonmerge-revoked", key, "previously non-merge node now %v", n.Status())
			}
		}
		next[key] = snapshot{
			sim:      n.Sim(),
			merged:   n.Status() == depgraph.Merged,
			nonMerge: n.Status() == depgraph.NonMerge,
		}
	})
	r.check()
	if inSum != g.EdgeCount() || outSum != g.EdgeCount() {
		r.violate("graph/edge-count", "", "edge sums in=%d out=%d, graph says %d", inSum, outSum, g.EdgeCount())
	}
	// Nodes folded away since the last pass simply leave the memory; their
	// merge decisions survive transitively through the absorbing node, which
	// the partition check verifies.
	a.prev = next
	a.TotalChecks += r.Checks
	return r
}

// CheckPartition audits a reconciliation result against the graph it came
// from:
//
//   - partitions are disjoint, cover the whole store, and never mix
//     classes; Assignment agrees with Partitions;
//   - when constraints are on, the closure respects every non-merge pair
//     (its references land in different partitions);
//   - when constraints are off, every merged reference pair's references
//     land in the same partition (with constraints the closure may revoke
//     the least-certain link on a violating path, so only the constrained
//     separation is asserted).
//
// Cost is one scan of the store, the partitions, and the graph's RefPair
// nodes.
func (a *Auditor) CheckPartition(phase string, store *reference.Store, g *depgraph.Graph,
	partitions map[string][][]reference.ID, assignment map[reference.ID]int) *Report {
	return a.CheckPartitionNodes(phase, store, g.Nodes, partitions, assignment)
}

// CheckPartitionNodes is CheckPartition over an arbitrary node iterator, so
// the sharded path can audit its result against the union of per-component
// graphs (the iterator must yield each decision-bearing RefPair node once;
// mirror copies are harmless duplicates — they carry the same references).
func (a *Auditor) CheckPartitionNodes(phase string, store *reference.Store, each func(func(*depgraph.Node)),
	partitions map[string][][]reference.ID, assignment map[reference.ID]int) *Report {
	r := &Report{Phase: phase}

	seen := make(map[reference.ID]string, store.Len())
	total := 0
	for class, parts := range partitions {
		for pi, part := range parts {
			label := fmt.Sprintf("%s[%d]", class, pi)
			r.check()
			if len(part) == 0 {
				r.violate("partition/empty", label, "empty partition")
				continue
			}
			base, baseOK := assignment[part[0]]
			for _, id := range part {
				total++
				r.check()
				if int(id) < 0 || int(id) >= store.Len() {
					r.violate("partition/unknown-ref", label, "reference %d not in store", id)
					continue
				}
				r.check()
				if prior, dup := seen[id]; dup {
					r.violate("partition/overlap", label, "reference %d already in %s", id, prior)
				}
				seen[id] = label
				r.check()
				if got := store.Get(id).Class; got != class {
					r.violate("partition/class-mix", label, "reference %d has class %s", id, got)
				}
				r.check()
				if lab, ok := assignment[id]; !ok || !baseOK || lab != base {
					r.violate("partition/assignment", label, "reference %d assignment disagrees with partition", id)
				}
			}
		}
	}
	r.check()
	if total != store.Len() {
		r.violate("partition/coverage", "", "partitions cover %d of %d references", total, store.Len())
	}

	each(func(n *depgraph.Node) {
		if n.Kind() != depgraph.RefPair {
			return
		}
		la, okA := assignment[n.RefA()]
		lb, okB := assignment[n.RefB()]
		switch n.Status() {
		case depgraph.NonMerge:
			if a.Constraints {
				r.check()
				if okA && okB && la == lb {
					r.violate("partition/constraint", n.Key(), "non-merge references %d and %d share partition %d", n.RefA(), n.RefB(), la)
				}
			}
		case depgraph.Merged:
			if !a.Constraints {
				r.check()
				if !okA || !okB || la != lb {
					r.violate("partition/merge-dropped", n.Key(), "merged references %d and %d in partitions %d and %d", n.RefA(), n.RefB(), la, lb)
				}
			}
		}
	})
	a.TotalChecks += r.Checks
	return r
}

// CheckSharding audits a shard.Split plan against the global graph it was
// derived from, immediately after the split (before any propagation
// mutates either side):
//
//   - every live candidate pair of the global graph is owned by exactly
//     one component — the one owning its references — and no component
//     owns a pair the global graph lacks;
//   - every mirror copy a component holds corresponds to a live pair of
//     its claimed source component, and the boundary link is registered on
//     both sides (the mirror appears in Plan.Links with matching source
//     and destination).
//
// Cost is one scan of the global graph plus one scan of every component
// graph.
func (a *Auditor) CheckSharding(phase string, plan *shard.Plan, g *depgraph.Graph) *Report {
	r := &Report{Phase: phase}

	global := make(map[string]struct{})
	globalPairs := 0
	g.Nodes(func(n *depgraph.Node) {
		if n.Kind() == depgraph.RefPair {
			global[n.Key()] = struct{}{}
			globalPairs++
		}
	})

	linked := make(map[*depgraph.Node]shard.Link, len(plan.Links))
	for _, l := range plan.Links {
		linked[l.Mirror] = l
	}

	owned := make(map[string]int, globalPairs)
	total := 0
	for _, c := range plan.Comps {
		c.G.Nodes(func(n *depgraph.Node) {
			if n.Kind() != depgraph.RefPair {
				return
			}
			key := n.Key()
			if !plan.IsMirror(c, n) {
				total++
				r.check()
				if _, ok := global[key]; !ok {
					r.violate("shard/unknown-pair", key, "component %d owns a pair the global graph lacks", c.ID)
				}
				r.check()
				if prior, dup := owned[key]; dup {
					r.violate("shard/multi-owner", key, "owned by components %d and %d", prior, c.ID)
				}
				owned[key] = c.ID
				return
			}
			srcComp := plan.CompOfRef(n.RefA())
			r.check()
			if srcComp < 0 || srcComp >= len(plan.Comps) || srcComp == c.ID {
				r.violate("shard/mirror-source", key, "mirror in component %d claims source component %d", c.ID, srcComp)
				return
			}
			r.check()
			if plan.Comps[srcComp].G.LookupRefPair(n.RefA(), n.RefB()) == nil {
				r.violate("shard/mirror-orphan", key, "mirror in component %d has no source pair in component %d", c.ID, srcComp)
			}
			l, ok := linked[n]
			r.check()
			if !ok {
				r.violate("shard/mirror-unlinked", key, "mirror in component %d has no boundary link", c.ID)
				return
			}
			r.check()
			if l.SrcComp != srcComp || l.DstComp != c.ID || !l.Src.Alive() {
				r.violate("shard/link-mismatch", key, "link (%d -> %d, src alive %v) disagrees with mirror in component %d from %d",
					l.SrcComp, l.DstComp, l.Src.Alive(), c.ID, srcComp)
			}
		})
	}
	r.check()
	if total != globalPairs {
		r.violate("shard/coverage", "", "components own %d of %d candidate pairs", total, globalPairs)
	}
	a.TotalChecks += r.Checks
	return r
}

// CheckSuperset asserts the incremental/batch coherence property: every
// pair of references the base run placed together must also be together in
// the refined run — the refined (incremental) merges form a superset of the
// base (batch) merges. The check is O(n): each base partition must map to a
// single refined label.
func CheckSuperset(phase string, base, refined map[reference.ID]int) *Report {
	r := &Report{Phase: phase}
	groupLabel := make(map[int]int)
	groupFirst := make(map[int]reference.ID)
	for id, g := range base {
		lab, ok := refined[id]
		r.check()
		if !ok {
			r.violate("refine/missing-ref", "", "reference %d absent from refined assignment", id)
			continue
		}
		first, seen := groupLabel[g]
		if !seen {
			groupLabel[g] = lab
			groupFirst[g] = id
			continue
		}
		r.check()
		if first != lab {
			r.violate("refine/split", "", "references %d and %d merged in base but split in refined run", groupFirst[g], id)
		}
	}
	return r
}
