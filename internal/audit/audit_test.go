package audit_test

import (
	"math"
	"strings"
	"testing"

	"refrecon/internal/audit"
	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
)

// maxInScore is a minimal digest-backed scorer: a ref pair scores the max
// of its real-valued evidence, a value pair keeps its construction score.
// Going through Digest puts the graph's aggregates on the maintained path,
// which is what the aggregate-divergence tests need.
func maxInScore(n *depgraph.Node) float64 {
	d := n.Digest()
	if n.Kind() == depgraph.ValuePair {
		if d.StrongMergedCount() > 0 {
			return 1
		}
		return n.Sim()
	}
	best := 0.0
	d.EachRealEvidence(func(_ string, max float64) {
		if max > best {
			best = max
		}
	})
	return best
}

func testOptions() depgraph.Options {
	return depgraph.Options{
		Scorer: depgraph.ScorerFunc(maxInScore),
		MergeThreshold: func(n *depgraph.Node) float64 {
			if n.Kind() == depgraph.ValuePair {
				return 1
			}
			return 0.7
		},
		Epsilon:   1e-9,
		Propagate: true,
		Enrich:    false,
		MaxSteps:  1_000_000,
	}
}

func auditorFor() *audit.Auditor {
	return audit.New(testOptions().MergeThreshold, false)
}

// buildGraph wires three person pairs: (0,1) with strong name evidence
// (merges), (2,3) with weak evidence (stays below threshold), and (4,5)
// marked non-merge.
func buildGraph(t *testing.T) (*depgraph.Graph, []*depgraph.Node) {
	t.Helper()
	g := depgraph.New()
	n01 := g.AddRefPair(0, 1, "Person")
	v1 := g.AddValuePair("name", "ann", "anne", 0.95)
	g.AddEdge(v1, n01, depgraph.RealValued, "name")

	n23 := g.AddRefPair(2, 3, "Person")
	v2 := g.AddValuePair("name", "bob", "rob", 0.4)
	g.AddEdge(v2, n23, depgraph.RealValued, "name")

	n45 := g.AddRefPair(4, 5, "Person")
	v3 := g.AddValuePair("name", "eve", "eva", 0.8)
	g.AddEdge(v3, n45, depgraph.RealValued, "name")
	g.MarkNonMerge(n45)

	g.Run([]*depgraph.Node{n01, n23, n45}, testOptions())
	if n01.Status() != depgraph.Merged {
		t.Fatalf("setup: expected (0,1) merged, got %v", n01.Status())
	}
	return g, []*depgraph.Node{n01, n23, n45}
}

func wantViolation(t *testing.T, r *audit.Report, check string) {
	t.Helper()
	for _, v := range r.Violations {
		if v.Check == check {
			return
		}
	}
	t.Fatalf("expected a %q violation, got %v", check, r.Violations)
}

func TestCleanGraphPasses(t *testing.T) {
	g, _ := buildGraph(t)
	a := auditorFor()
	for _, phase := range []string{"build", "propagate"} {
		r := a.CheckGraph(phase, g, false)
		if err := r.Err(); err != nil {
			t.Fatalf("phase %s: %v", phase, err)
		}
		if r.Checks == 0 {
			t.Fatalf("phase %s: no checks evaluated", phase)
		}
	}
	if a.TotalChecks == 0 {
		t.Fatal("TotalChecks not accumulated")
	}
}

func TestSimRangeViolations(t *testing.T) {
	for name, bad := range map[string]float64{"nan": math.NaN(), "above-one": 1.5, "negative": -0.25} {
		t.Run(name, func(t *testing.T) {
			g, nodes := buildGraph(t)
			nodes[1].SetSim(bad)
			r := auditorFor().CheckGraph("corrupt", g, false)
			wantViolation(t, r, "graph/sim-range")
		})
	}
}

func TestMergedBelowThreshold(t *testing.T) {
	g, nodes := buildGraph(t)
	g.MarkMerged(nodes[1]) // sim 0.4 < 0.7 threshold
	r := auditorFor().CheckGraph("corrupt", g, false)
	wantViolation(t, r, "graph/merged-below-threshold")
}

func TestNonMergeSimViolation(t *testing.T) {
	g, nodes := buildGraph(t)
	nodes[2].SetSim(0.3) // non-merge nodes are frozen at 0
	r := auditorFor().CheckGraph("corrupt", g, false)
	wantViolation(t, r, "graph/nonmerge-sim")
}

func TestCrossPhaseMonotonicity(t *testing.T) {
	g, nodes := buildGraph(t)
	a := auditorFor()
	if err := a.CheckGraph("propagate", g, false).Err(); err != nil {
		t.Fatal(err)
	}
	nodes[0].SetSim(0.8) // regression from 0.95
	r := a.CheckGraph("next", g, false)
	wantViolation(t, r, "graph/sim-monotone")
}

func TestMergedNeverDemoted(t *testing.T) {
	g, nodes := buildGraph(t)
	a := auditorFor()
	if err := a.CheckGraph("propagate", g, false).Err(); err != nil {
		t.Fatal(err)
	}
	nodes[0].SetStatus(depgraph.Active)
	r := a.CheckGraph("next", g, false)
	wantViolation(t, r, "graph/merged-demoted")

	// The truncated escape hatch must suppress exactly this check.
	g2, nodes2 := buildGraph(t)
	a2 := auditorFor()
	a2.CheckGraph("propagate", g2, false)
	nodes2[0].SetStatus(depgraph.Active)
	if r := a2.CheckGraph("next", g2, true); !r.Ok() {
		for _, v := range r.Violations {
			if v.Check == "graph/merged-demoted" {
				t.Fatalf("truncated run still flagged demotion: %v", v)
			}
		}
	}
}

func TestNonMergeRevoked(t *testing.T) {
	g, nodes := buildGraph(t)
	a := auditorFor()
	if err := a.CheckGraph("propagate", g, false).Err(); err != nil {
		t.Fatal(err)
	}
	nodes[2].SetStatus(depgraph.Inactive)
	r := a.CheckGraph("next", g, false)
	wantViolation(t, r, "graph/nonmerge-revoked")
}

func TestAggregateDivergence(t *testing.T) {
	g, _ := buildGraph(t)
	// Raise an evidence source's similarity behind the graph's back: the
	// maintained digest of its dependent ref pair goes stale.
	v := g.Lookup(depgraph.ValuePairKey("name", "bob", "rob"))
	if v == nil {
		t.Fatal("value pair not found")
	}
	v.SetSim(0.99)
	r := auditorFor().CheckGraph("corrupt", g, false)
	wantViolation(t, r, "graph/aggregate-divergence")
}

func partitionFixture(t *testing.T) (*reference.Store, *depgraph.Graph, map[string][][]reference.ID, map[reference.ID]int) {
	t.Helper()
	store := reference.NewStore()
	for i := 0; i < 6; i++ {
		store.Add(reference.New("Person").AddAtomic("name", "p"))
	}
	g, _ := buildGraph(t)
	partitions := map[string][][]reference.ID{
		"Person": {{0, 1}, {2}, {3}, {4}, {5}},
	}
	assignment := map[reference.ID]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 3, 5: 4}
	return store, g, partitions, assignment
}

func TestCleanPartitionPasses(t *testing.T) {
	store, g, parts, assign := partitionFixture(t)
	a := auditorFor()
	if err := a.CheckPartition("closure", store, g, parts, assign).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionViolations(t *testing.T) {
	t.Run("coverage", func(t *testing.T) {
		store, g, parts, assign := partitionFixture(t)
		parts["Person"] = parts["Person"][:4] // drop reference 5
		delete(assign, 5)
		r := auditorFor().CheckPartition("closure", store, g, parts, assign)
		wantViolation(t, r, "partition/coverage")
	})
	t.Run("overlap", func(t *testing.T) {
		store, g, parts, assign := partitionFixture(t)
		parts["Person"] = append(parts["Person"], []reference.ID{1})
		r := auditorFor().CheckPartition("closure", store, g, parts, assign)
		wantViolation(t, r, "partition/overlap")
	})
	t.Run("class-mix", func(t *testing.T) {
		store, g, parts, assign := partitionFixture(t)
		parts["Article"] = [][]reference.ID{{5}}
		parts["Person"] = parts["Person"][:4]
		r := auditorFor().CheckPartition("closure", store, g, parts, assign)
		wantViolation(t, r, "partition/class-mix")
	})
	t.Run("assignment-disagrees", func(t *testing.T) {
		store, g, parts, assign := partitionFixture(t)
		assign[1] = 7
		r := auditorFor().CheckPartition("closure", store, g, parts, assign)
		wantViolation(t, r, "partition/assignment")
	})
	t.Run("merge-dropped", func(t *testing.T) {
		store, g, parts, assign := partitionFixture(t)
		parts["Person"] = [][]reference.ID{{0}, {1}, {2}, {3}, {4}, {5}}
		assign[0], assign[1] = 0, 5
		r := auditorFor().CheckPartition("closure", store, g, parts, assign)
		wantViolation(t, r, "partition/merge-dropped")
	})
	t.Run("constraint-violated", func(t *testing.T) {
		store, g, parts, assign := partitionFixture(t)
		parts["Person"] = [][]reference.ID{{0, 1}, {2}, {3}, {4, 5}}
		assign[5] = assign[4]
		a := audit.New(testOptions().MergeThreshold, true)
		r := a.CheckPartition("closure", store, g, parts, assign)
		wantViolation(t, r, "partition/constraint")
	})
}

func TestCheckSuperset(t *testing.T) {
	base := map[reference.ID]int{0: 0, 1: 0, 2: 1, 3: 2}
	refined := map[reference.ID]int{0: 9, 1: 9, 2: 9, 3: 4}
	if err := audit.CheckSuperset("diff", base, refined).Err(); err != nil {
		t.Fatalf("merge-preserving refinement flagged: %v", err)
	}
	split := map[reference.ID]int{0: 1, 1: 2, 2: 3, 3: 4}
	r := audit.CheckSuperset("diff", base, split)
	wantViolation(t, r, "refine/split")
	missing := map[reference.ID]int{0: 1}
	wantViolation(t, audit.CheckSuperset("diff", base, missing), "refine/missing-ref")
}

func TestReportErr(t *testing.T) {
	g, nodes := buildGraph(t)
	nodes[0].SetSim(math.NaN())
	err := auditorFor().CheckGraph("corrupt", g, false).Err()
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "graph/sim-range") || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error lacks context: %v", err)
	}
}
