// Package names models personal names for reference reconciliation.
//
// Person references in complex information spaces mention the same person
// under many conventions: "Robert S. Epstein", "Epstein, R.S.", "R. Epstein",
// "mike". This package parses those forms into structured names and provides
// the comparison primitives the reconciler's Person similarity function is
// built from: compatibility of abbreviated forms, typo-tolerant similarity,
// and the hard *incompatibility* predicate behind the paper's constraint 2
// ("two persons with the same first name but completely different last name
// ... are distinct").
package names

import (
	"strings"

	"refrecon/internal/strsim"
	"refrecon/internal/tokenizer"
)

// Name is a parsed personal name. All components are normalized
// (lowercase, accent-folded). Initials are stored as single letters without
// periods. A component may be empty when the source string did not carry
// it, which is common for references extracted from emails ("mike") and
// citations ("Wong, E.").
type Name struct {
	First  string   // given name or initial ("robert", "r")
	Middle []string // middle names or initials, in order
	Last   string   // family name ("epstein"); may be multi-word ("van gogh")
	Raw    string   // the normalized full input
}

// suffixes dropped during parsing.
var suffixes = map[string]bool{
	"jr": true, "sr": true, "ii": true, "iii": true, "iv": true,
	"phd": true, "md": true,
}

// particles that belong to the surname ("van", "de", ...).
var particles = map[string]bool{
	"van": true, "von": true, "de": true, "del": true, "della": true,
	"di": true, "da": true, "der": true, "den": true, "la": true,
	"le": true, "al": true, "el": true, "bin": true, "ter": true,
	"mac": false, // Mac/Mc are prefixes fused into the token, not particles
}

// Parse interprets a raw name string. It understands both
// "Last, First Middle" (comma form, ubiquitous in citations) and
// "First Middle Last" (natural form), multi-token surnames introduced by
// particles, fused initials ("R.S." -> "r","s"), and single-token names
// (treated as a first name, since emails usually show given names or
// nicknames). An empty or punctuation-only input yields a zero Name.
func Parse(raw string) Name {
	n := Name{Raw: tokenizer.Normalize(raw)}
	if i := strings.IndexByte(raw, ','); i >= 0 {
		// "Last, First M."
		last := tokens(raw[:i])
		rest := tokens(raw[i+1:])
		n.Last = strings.Join(last, " ")
		if len(rest) > 0 {
			n.First = rest[0]
			n.Middle = rest[1:]
		}
		return n
	}
	toks := tokens(raw)
	switch len(toks) {
	case 0:
		return n
	case 1:
		n.First = toks[0]
		return n
	}
	// Natural order: last token(s) form the surname; pull preceding
	// particles into it.
	lastStart := len(toks) - 1
	for lastStart-1 > 0 && particles[toks[lastStart-1]] {
		lastStart--
	}
	n.Last = strings.Join(toks[lastStart:], " ")
	n.First = toks[0]
	n.Middle = toks[1:lastStart]
	return n
}

// tokens splits raw into normalized name tokens, expanding fused initials
// ("R.S." becomes "r", "s"; "RS" does not, since it could be a name),
// keeping hyphenated names together ("Garcia-Molina" is one token,
// "garcia molina"), and dropping suffixes.
func tokens(raw string) []string {
	var out []string
	// Split on whitespace first so we can detect dotted-initial groups.
	for _, field := range strings.Fields(raw) {
		hasDot := strings.ContainsAny(field, ".")
		if strings.ContainsRune(field, '-') {
			// A hyphenated name is a single component: splitting
			// "Garcia-Molina" would demote "garcia" to a middle name and
			// break surname matching.
			parts := tokenizer.Words(field)
			if len(parts) > 1 && !allSingleLetters(parts) {
				joined := strings.Join(parts, " ")
				if !suffixes[joined] {
					out = append(out, joined)
				}
				continue
			}
		}
		ws := tokenizer.Words(field)
		for _, w := range ws {
			if suffixes[w] {
				continue
			}
			if hasDot && len(ws) > 1 && allSingleLetters(ws) {
				out = append(out, w) // each dotted letter is an initial
				continue
			}
			if hasDot && len(w) <= 2 && len(ws) == 1 && isAlpha(w) && len(w) == 2 {
				// "Rs." style fused pair without inner dots is ambiguous;
				// keep as-is.
				out = append(out, w)
				continue
			}
			out = append(out, w)
		}
	}
	return out
}

func allSingleLetters(ws []string) bool {
	for _, w := range ws {
		if len(w) != 1 {
			return false
		}
	}
	return true
}

func isAlpha(s string) bool {
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// IsInitial reports whether the component is a single-letter abbreviation.
func IsInitial(comp string) bool { return len([]rune(comp)) == 1 }

// IsFull reports whether the name has both a non-initial first name and a
// last name — the paper's notion of a "full name", required before
// strong-boolean evidence may push two person references together.
func (n Name) IsFull() bool {
	return n.Last != "" && n.First != "" && !IsInitial(n.First)
}

// IsEmpty reports whether nothing was parsed.
func (n Name) IsEmpty() bool { return n.First == "" && n.Last == "" }

// String renders the name in "first middle last" order.
func (n Name) String() string {
	parts := make([]string, 0, 2+len(n.Middle))
	if n.First != "" {
		parts = append(parts, n.First)
	}
	parts = append(parts, n.Middle...)
	if n.Last != "" {
		parts = append(parts, n.Last)
	}
	return strings.Join(parts, " ")
}

// nicknames maps common English diminutives to their formal given names.
// The table is deliberately small: it covers the nicknames that actually
// show up in email display names. Lookups are tried in both directions.
var nicknames = map[string]string{
	"mike": "michael", "bob": "robert", "rob": "robert", "bill": "william",
	"will": "william", "dick": "richard", "rick": "richard", "liz": "elizabeth",
	"beth": "elizabeth", "jim": "james", "tom": "thomas", "dave": "david",
	"dan": "daniel", "steve": "stephen", "tony": "anthony", "alex": "alexander",
	"sam": "samuel", "matt": "matthew", "chris": "christopher", "joe": "joseph",
	"jeff": "jeffrey", "andy": "andrew", "ed": "edward", "ted": "edward",
	"kate": "katherine", "kathy": "katherine", "jen": "jennifer",
	"jenny": "jennifer", "sue": "susan", "pat": "patricia", "pete": "peter",
	"greg": "gregory", "fred": "frederick", "ben": "benjamin",
	"nick": "nicholas", "ray": "raymond", "ron": "ronald", "don": "donald",
	"tim": "timothy", "ken": "kenneth", "larry": "lawrence",
}

// Formal returns the formal given name behind a known nickname ("mike" ->
// "michael"), or the input itself when no nickname is known.
func Formal(given string) string {
	if f, ok := nicknames[given]; ok {
		return f
	}
	return given
}

// formalToNick is the reverse of the nicknames table; when several
// nicknames share a formal name the lexicographically smallest wins, so
// the mapping is deterministic.
var formalToNick = func() map[string]string {
	m := make(map[string]string, len(nicknames))
	for nick, formal := range nicknames {
		if cur, ok := m[formal]; !ok || nick < cur {
			m[formal] = nick
		}
	}
	return m
}()

// Nickname returns a common diminutive of a formal given name ("michael"
// -> "mike"), or "" when none is known.
func Nickname(formal string) string { return formalToNick[formal] }

// nicknameMatch reports whether a and b are related through the nickname
// table ("mike" ~ "michael"), including nickname-to-nickname via a shared
// formal name ("bob" ~ "rob").
func nicknameMatch(a, b string) bool {
	fa, fb := a, b
	if f, ok := nicknames[a]; ok {
		fa = f
	}
	if f, ok := nicknames[b]; ok {
		fb = f
	}
	return fa == fb
}

// componentCompatible reports whether two given-name components could
// denote the same name: equal, one is the initial of the other, a known
// nickname pair, a prefix diminutive ("stef"/"stefano"), or a very close
// typo (Jaro-Winkler above 0.93, e.g. "micheal"/"michael").
func componentCompatible(a, b string) bool {
	if a == "" || b == "" {
		return true // missing information is not contradictory
	}
	if a == b {
		return true
	}
	if IsInitial(a) || IsInitial(b) {
		return a[0] == b[0]
	}
	if nicknameMatch(a, b) {
		return true
	}
	// Prefix diminutive: the shorter (>= 3 runes) is a prefix of the longer.
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	if len(short) >= 3 && strings.HasPrefix(long, short) {
		return true
	}
	return strsim.JaroWinkler(a, b) >= 0.93
}

// Compatible reports whether two parsed names could plausibly denote the
// same person: their last names must agree (exactly or by close typo) when
// both are present, and their first/middle components must not contradict
// under abbreviation.
func Compatible(a, b Name) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return true
	}
	if a.Last != "" && b.Last != "" {
		if !lastNameClose(a.Last, b.Last) {
			return false
		}
	}
	if !componentCompatible(a.First, b.First) {
		// One reference's "first" may be the other's surname when one side
		// is a bare token ("stonebraker" alone); allow first-vs-last match.
		if !(a.Last == "" && componentCompatible(a.First, b.Last)) &&
			!(b.Last == "" && componentCompatible(b.First, a.Last)) {
			return false
		}
	}
	return true
}

func lastNameClose(a, b string) bool {
	if a == b {
		return true
	}
	return strsim.JaroWinkler(a, b) >= 0.92
}

// Similarity scores two raw name strings in [0,1] with name-specific
// semantics layered over generic string similarity:
//
//   - exact normalized equality scores 1;
//   - agreeing last names with compatible (possibly abbreviated) first
//     names score highly, with full-name agreement above initial-only
//     agreement;
//   - incompatible names score near 0 regardless of surface similarity
//     ("Matt" vs "Michael Stonebraker").
func Similarity(rawA, rawB string) float64 {
	a, b := Parse(rawA), Parse(rawB)
	return ParsedSimilarity(a, b)
}

// ParsedSimilarity is Similarity over already-parsed names.
func ParsedSimilarity(a, b Name) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 1
	}
	if a.IsEmpty() || b.IsEmpty() {
		return 0
	}
	if bareGiven(a) && bareGiven(b) {
		// Two bare given names ("Angela" vs "Angela") agreeing is NOT
		// identifying — many people share a first name — so even exact
		// equality stays below the merge threshold and needs
		// corroborating evidence (a shared email, common contacts).
		if a.First == b.First || Formal(a.First) == Formal(b.First) {
			return 0.78
		}
		return 0.5 * strsim.JaroWinkler(a.First, b.First)
	}
	if a.Raw != "" && a.Raw == b.Raw {
		return 1
	}
	if a.String() == b.String() {
		return 1
	}
	if Incompatible(a, b) {
		// Hard contradiction: surface similarity is irrelevant.
		return 0.05 * strsim.JaroWinkler(a.Raw, b.Raw)
	}
	if !Compatible(a, b) {
		// Not contradictory enough for the constraint, but no agreement.
		return 0.3 * strsim.MongeElkan(a.Raw, b.Raw, nil)
	}
	// Compatible names: score by how much affirmative agreement exists.
	switch {
	case a.Last != "" && b.Last != "":
		base := 0.6 * strsim.JaroWinkler(a.Last, b.Last)
		if a.First != "" && b.First != "" {
			if !IsInitial(a.First) && !IsInitial(b.First) && componentCompatible(a.First, b.First) {
				base += 0.35 // full first names agree
			} else {
				// Initial-level agreement ("Epstein, R.S." vs "Robert
				// Epstein") deliberately lands just BELOW the 0.85 merge
				// threshold: a surname plus an initial is ambiguous, so
				// reconciliation must come from corroborating evidence —
				// a shared article (+β), common contacts (+γ), or an
				// email. This is what makes the association evidence of
				// the paper matter.
				base += 0.2
			}
			if middleAgree(a, b) {
				base += 0.05
			}
		} else {
			base += 0.1 // surname-only match: weak
		}
		if base > 1 {
			base = 1
		}
		return base
	default:
		// At least one side lacks a surname; rely on best component match.
		best := 0.0
		for _, x := range componentsOf(a) {
			for _, y := range componentsOf(b) {
				if s := componentSim(x, y); s > best {
					best = s
				}
			}
		}
		return 0.7 * best
	}
}

// bareGiven reports whether the name is a lone, full given name.
func bareGiven(n Name) bool {
	return n.Last == "" && len(n.Middle) == 0 && n.First != "" && !IsInitial(n.First)
}

func componentSim(a, b string) float64 {
	if a == b && a != "" {
		return 1
	}
	if componentCompatible(a, b) && a != "" && b != "" {
		if IsInitial(a) || IsInitial(b) {
			return 0.6
		}
		return 0.9
	}
	return strsim.JaroWinkler(a, b) * 0.5
}

func componentsOf(n Name) []string {
	out := make([]string, 0, 2+len(n.Middle))
	if n.First != "" {
		out = append(out, n.First)
	}
	out = append(out, n.Middle...)
	if n.Last != "" {
		out = append(out, n.Last)
	}
	return out
}

func middleAgree(a, b Name) bool {
	if len(a.Middle) == 0 || len(b.Middle) == 0 {
		return false
	}
	return componentCompatible(a.Middle[0], b.Middle[0])
}

// Incompatible implements the name half of the paper's constraint 2: the
// two names share one component class (first or last) exactly but differ
// completely on the other, with both sides carrying full (non-initial)
// information. Such pairs are guaranteed-distinct persons unless an email
// key overrides the constraint at a higher level.
//
// One extension beyond the paper's wording covers its own §3.4 example: a
// single-token given name ("Matt") is incompatible with a full name whose
// first name differs completely ("Michael Stonebraker"), provided the token
// does not instead match the surname ("Wong" vs "Eugene Wong" stays
// compatible).
func Incompatible(a, b Name) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return false
	}
	completelyDifferent := func(x, y string) bool {
		return !componentCompatible(x, y) && strsim.JaroWinkler(x, y) < 0.8
	}
	// Single-token given name vs full name (§3.4's "Matt" case).
	if a.Last == "" || b.Last == "" {
		solo, full := a, b
		if b.Last == "" {
			solo, full = b, a
		}
		if solo.Last != "" || solo.First == "" || IsInitial(solo.First) {
			return false
		}
		if full.Last == "" || full.First == "" || IsInitial(full.First) {
			return false
		}
		return completelyDifferent(solo.First, full.First) &&
			completelyDifferent(solo.First, full.Last)
	}
	fullFirsts := a.First != "" && b.First != "" && !IsInitial(a.First) && !IsInitial(b.First)
	if !fullFirsts {
		return false
	}
	firstSame := componentCompatible(a.First, b.First)
	lastSame := lastNameClose(a.Last, b.Last)
	if firstSame && completelyDifferent(a.Last, b.Last) {
		return true
	}
	if lastSame && completelyDifferent(a.First, b.First) {
		return true
	}
	return false
}
