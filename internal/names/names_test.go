package names

import (
	"testing"
	"testing/quick"
)

func TestParseNaturalOrder(t *testing.T) {
	cases := []struct {
		in          string
		first, last string
		middle      []string
	}{
		{"Robert S. Epstein", "robert", "epstein", []string{"s"}},
		{"Michael Stonebraker", "michael", "stonebraker", nil},
		{"Eugene Wong", "eugene", "wong", nil},
		{"mike", "mike", "", nil},
		{"Vincent van Gogh", "vincent", "van gogh", nil},
		{"Hector Garcia-Molina", "hector", "garcia molina", nil},
		{"Jean-Pierre Serre", "jean pierre", "serre", nil},
		{"Ludwig von Beethoven", "ludwig", "von beethoven", nil},
		{"John Ronald Reuel Tolkien", "john", "tolkien", []string{"ronald", "reuel"}},
		{"", "", "", nil},
		{"  .,  ", "", "", nil},
	}
	for _, c := range cases {
		n := Parse(c.in)
		if n.First != c.first || n.Last != c.last {
			t.Errorf("Parse(%q) = first %q last %q, want %q/%q", c.in, n.First, n.Last, c.first, c.last)
		}
		if len(n.Middle) != len(c.middle) {
			t.Errorf("Parse(%q).Middle = %v, want %v", c.in, n.Middle, c.middle)
			continue
		}
		for i := range c.middle {
			if n.Middle[i] != c.middle[i] {
				t.Errorf("Parse(%q).Middle = %v, want %v", c.in, n.Middle, c.middle)
			}
		}
	}
}

func TestParseCommaOrder(t *testing.T) {
	cases := []struct {
		in          string
		first, last string
		nMiddle     int
	}{
		{"Epstein, R.S.", "r", "epstein", 1},
		{"Stonebraker, M.", "m", "stonebraker", 0},
		{"Wong, E.", "e", "wong", 0},
		{"van Gogh, Vincent", "vincent", "van gogh", 0},
		{"Garcia-Molina, H.", "h", "garcia molina", 0},
		{"Last,", "", "last", 0},
	}
	for _, c := range cases {
		n := Parse(c.in)
		if n.First != c.first || n.Last != c.last || len(n.Middle) != c.nMiddle {
			t.Errorf("Parse(%q) = %+v, want first=%q last=%q middle#%d", c.in, n, c.first, c.last, c.nMiddle)
		}
	}
}

func TestParseFusedInitials(t *testing.T) {
	n := Parse("Epstein, R.S.")
	if n.First != "r" || len(n.Middle) != 1 || n.Middle[0] != "s" {
		t.Errorf("fused initials not expanded: %+v", n)
	}
}

func TestSuffixDropped(t *testing.T) {
	n := Parse("Martin Luther King Jr.")
	if n.Last != "king" {
		t.Errorf("suffix not dropped: %+v", n)
	}
}

func TestIsFull(t *testing.T) {
	if !Parse("Michael Stonebraker").IsFull() {
		t.Error("full name not detected")
	}
	if Parse("Stonebraker, M.").IsFull() {
		t.Error("initial-only name wrongly full")
	}
	if Parse("mike").IsFull() {
		t.Error("single token wrongly full")
	}
}

func TestCompatible(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Robert S. Epstein", "Epstein, R.S.", true},
		{"Michael Stonebraker", "Stonebraker, M.", true},
		{"Eugene Wong", "Wong, E.", true},
		{"Michael Stonebraker", "micheal stonebraker", true}, // typo
		{"Michael Stonebraker", "Matt Stonebraker", false},
		{"Michael Stonebraker", "Michael Carey", false},
		{"Eugene Wong", "Wong, J.", false},
		{"mike", "Michael Stonebraker", true}, // nickname prefix vs first
		{"", "Anyone", true},                  // empty is non-contradictory
	}
	for _, c := range cases {
		if got := Compatible(Parse(c.a), Parse(c.b)); got != c.want {
			t.Errorf("Compatible(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIncompatible(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Matt Stonebraker", "Michael Stonebraker", true}, // same last, different first
		{"Michael Carey", "Michael Stonebraker", true},    // same first, different last
		{"Michael Stonebraker", "Stonebraker, M.", false}, // initial is not contradiction
		{"Michael Stonebraker", "Michael Stonebraker", false},
		{"mike", "Michael Stonebraker", false}, // nickname is compatible
		{"Matt", "Michael Stonebraker", true},  // §3.4's example
		{"Wong", "Eugene Wong", false},         // single token matches surname
		{"Jane Smith", "John Doe", false},      // everything differs -> not this constraint
	}
	for _, c := range cases {
		if got := Incompatible(Parse(c.a), Parse(c.b)); got != c.want {
			t.Errorf("Incompatible(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarityOrdering(t *testing.T) {
	// Full agreement > abbreviated agreement > unrelated.
	full := Similarity("Michael Stonebraker", "Michael Stonebraker")
	abbrev := Similarity("Michael Stonebraker", "Stonebraker, M.")
	unrelated := Similarity("Michael Stonebraker", "Jennifer Widom")
	contradictory := Similarity("Michael Stonebraker", "Matt Stonebraker")
	if full != 1 {
		t.Errorf("exact = %f, want 1", full)
	}
	if !(abbrev > 0.7) {
		t.Errorf("abbrev = %f, want > 0.7", abbrev)
	}
	if !(abbrev < full) {
		t.Errorf("abbrev %f should be < full %f", abbrev, full)
	}
	if unrelated > 0.4 {
		t.Errorf("unrelated = %f, want <= 0.4", unrelated)
	}
	if contradictory > 0.1 {
		t.Errorf("contradictory = %f, want <= 0.1", contradictory)
	}
}

func TestSimilaritySymmetricBounded(t *testing.T) {
	f := func(a, b string) bool {
		s1, s2 := Similarity(a, b), Similarity(b, a)
		if s1 < 0 || s1 > 1 {
			return false
		}
		return abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarityReflexive(t *testing.T) {
	// Exact self-similarity is 1 except for bare given names, which are
	// deliberately non-identifying (0.78).
	f := func(a string) bool {
		s := Similarity(a, a)
		n := Parse(a)
		if n.Last == "" && len(n.Middle) == 0 && n.First != "" && !IsInitial(n.First) {
			return s == 0.78
		}
		return s == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBareGivenNameNotIdentifying(t *testing.T) {
	if s := Similarity("Angela", "Angela"); s != 0.78 {
		t.Errorf("bare given equality = %f, want 0.78", s)
	}
	if s := Similarity("mike", "Michael"); s != 0.78 {
		t.Errorf("nickname-formal bare pair = %f, want 0.78", s)
	}
	if s := Similarity("Angela", "Betty"); s > 0.4 {
		t.Errorf("different bare givens = %f, want low", s)
	}
	if s := Similarity("Angela Sanchez", "Angela Sanchez"); s != 1 {
		t.Errorf("full name equality = %f, want 1", s)
	}
}

func TestStringRoundTrip(t *testing.T) {
	n := Parse("Robert S. Epstein")
	if n.String() != "robert s epstein" {
		t.Errorf("String = %q", n.String())
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
