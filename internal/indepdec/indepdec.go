// Package indepdec implements the INDEPDEC baseline of §5.2: a candidate
// standard reference reconciliation approach in the spirit of merge/purge
// [21] and canopy-based reference matching [27].
//
// INDEPDEC compares each pair of same-class references by their atomic
// attributes *independently* — names with names, emails with emails — and
// combines the scores into a single similarity with the *same* similarity
// functions and thresholds as DepGraph. It never compares values across
// attributes, never consults associations, never propagates or enriches,
// and enforces no constraints. The final partition is the transitive
// closure of above-threshold pairs.
package indepdec

import (
	"fmt"
	"runtime"
	"sync"

	"refrecon/internal/blocking"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
	"refrecon/internal/simfn"
	"refrecon/internal/tokenizer"
	"refrecon/internal/unionfind"
)

// Config holds the baseline's parameters. These mirror the DepGraph
// settings so the comparison isolates the algorithmic difference (§5.2:
// "we use the same similarity functions and thresholds for INDEPDEC and
// DEPGRAPH").
type Config struct {
	// MergeThreshold is the pair merge threshold (default 0.85).
	MergeThreshold float64
	// BucketCap bounds blocking bucket sizes (0 = unlimited).
	BucketCap int
	// Workers sets the parallelism of pair scoring. Pair comparisons are
	// independent, so the baseline scores them on a worker pool; the
	// result is deterministic regardless of worker count. 0 means
	// GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the published settings.
func DefaultConfig() Config {
	return Config{MergeThreshold: 0.85, BucketCap: 512}
}

// Result is the baseline's output, shaped like recon.Result.
type Result struct {
	Partitions map[string][][]reference.ID
	Assignment map[reference.ID]int
	// ComparedPairs counts candidate pairs scored.
	ComparedPairs int
}

// PartitionCount returns the number of partitions for a class.
func (r *Result) PartitionCount(class string) int { return len(r.Partitions[class]) }

// SameEntity reports whether two references landed in the same partition.
func (r *Result) SameEntity(a, b reference.ID) bool {
	pa, okA := r.Assignment[a]
	pb, okB := r.Assignment[b]
	return okA && okB && pa == pb
}

// Reconciler is the INDEPDEC baseline.
type Reconciler struct {
	sch *schema.Schema
	cfg Config
}

// New returns a baseline reconciler.
func New(sch *schema.Schema, cfg Config) *Reconciler {
	if cfg.MergeThreshold == 0 {
		cfg.MergeThreshold = 0.85
	}
	return &Reconciler{sch: sch, cfg: cfg}
}

// attrEvidence lists the same-attribute comparisons per class.
var attrEvidence = map[string][]struct {
	attr     string
	evidence string
}{
	schema.ClassPerson: {
		{schema.AttrName, simfn.EvName},
		{schema.AttrEmail, simfn.EvEmail},
	},
	schema.ClassArticle: {
		{schema.AttrTitle, simfn.EvTitle},
		{schema.AttrYear, simfn.EvYear},
		{schema.AttrPages, simfn.EvPages},
	},
	schema.ClassVenue: {
		{schema.AttrName, simfn.EvVenueName},
		{schema.AttrYear, simfn.EvYear},
		{schema.AttrLocation, simfn.EvLocation},
	},
}

// Reconcile partitions the store's references attribute-wise.
func (rc *Reconciler) Reconcile(store *reference.Store) (*Result, error) {
	if err := store.Validate(rc.sch); err != nil {
		return nil, fmt.Errorf("indepdec: invalid input: %w", err)
	}
	lib := simfn.NewLibrary()
	for _, r := range store.All() {
		for _, t := range r.Atomic(schema.AttrTitle) {
			lib.Titles.Add(t)
		}
		if r.Class == schema.ClassVenue {
			for _, v := range r.Atomic(schema.AttrName) {
				lib.Venues.Add(v)
			}
		}
	}
	uf := unionfind.New(store.Len())
	res := &Result{
		Partitions: make(map[string][][]reference.ID),
		Assignment: make(map[reference.ID]int, store.Len()),
	}
	workers := rc.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, class := range store.Classes() {
		idx := blocking.New(rc.cfg.BucketCap)
		for _, id := range store.ByClass(class) {
			blockKeysAttrWise(store.Get(id), func(k string) { idx.Add(k, id) })
		}
		var pairs [][2]reference.ID
		idx.Pairs(func(x, y reference.ID) {
			pairs = append(pairs, [2]reference.ID{x, y})
		})
		res.ComparedPairs += len(pairs)

		// Score in parallel; apply unions sequentially in pair order so
		// the result does not depend on scheduling.
		matched := make([]bool, len(pairs))
		var wg sync.WaitGroup
		chunk := (len(pairs) + workers - 1) / workers
		for w := 0; w < workers && w*chunk < len(pairs); w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(pairs) {
				hi = len(pairs)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					p := pairs[i]
					matched[i] = rc.pairSim(lib, store.Get(p[0]), store.Get(p[1])) >= rc.cfg.MergeThreshold
				}
			}(lo, hi)
		}
		wg.Wait()
		for i, p := range pairs {
			if matched[i] {
				uf.Union(int(p[0]), int(p[1]))
			}
		}
	}
	for label, part := range uf.Partitions() {
		class := store.Get(reference.ID(part[0])).Class
		ids := make([]reference.ID, len(part))
		for i, v := range part {
			ids[i] = reference.ID(v)
			res.Assignment[reference.ID(v)] = label
		}
		res.Partitions[class] = append(res.Partitions[class], ids)
	}
	return res, nil
}

// pairSim combines the attribute-wise similarities with the shared S_rv
// decision trees (the baseline gets the same missing-value and key-
// attribute treatment as DepGraph, §5.4).
func (rc *Reconciler) pairSim(lib *simfn.Library, r1, r2 *reference.Reference) float64 {
	ev := simfn.Evidence{Real: make(map[string]float64)}
	for _, ae := range attrEvidence[r1.Class] {
		best, seen := 0.0, false
		for _, v1 := range r1.Atomic(ae.attr) {
			for _, v2 := range r2.Atomic(ae.attr) {
				seen = true
				if s := lib.Compare(ae.evidence, v1, v2); s > best {
					best = s
				}
			}
		}
		if seen {
			ev.Real[ae.evidence] = best
		}
	}
	return simfn.SRV(r1.Class, ev)
}

// blockKeysAttrWise emits blocking keys from same-attribute values only,
// mirroring what the baseline is allowed to compare.
func blockKeysAttrWise(r *reference.Reference, keys func(string)) {
	for _, attr := range r.AtomicAttrs() {
		for _, v := range r.Atomic(attr) {
			for _, tok := range tokenizer.Words(v) {
				if len(tok) >= 3 {
					keys(attr + ":" + tok)
				}
			}
			keys(attr + "=" + tokenizer.Normalize(v))
		}
	}
}
