package indepdec

import (
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func person(s *reference.Store, name, email string) reference.ID {
	r := reference.New(schema.ClassPerson)
	r.AddAtomic(schema.AttrName, name)
	r.AddAtomic(schema.AttrEmail, email)
	return s.Add(r)
}

func TestAttrWiseMerges(t *testing.T) {
	s := reference.NewStore()
	a := person(s, "Michael Stonebraker", "")
	b := person(s, "Stonebraker, M.", "")
	c := person(s, "Jennifer Widom", "")
	d := person(s, "", "widom@stanford.edu")
	e := person(s, "", "widom@stanford.edu")

	full1 := person(s, "Jeffrey Naughton", "")
	full2 := person(s, "Jeffrey Naughton", "")

	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameEntity(full1, full2) {
		t.Error("identical full names should merge attribute-wise")
	}
	// A surname plus a bare initial is ambiguous and sits just below the
	// merge threshold: this is exactly the recall gap that DepGraph's
	// association evidence closes (Table 3's PArticle subset).
	if res.SameEntity(a, b) {
		t.Error("abbreviated name alone should NOT merge attribute-wise")
	}
	if !res.SameEntity(d, e) {
		t.Error("identical email key should merge")
	}
	if res.SameEntity(a, c) {
		t.Error("unrelated names must not merge")
	}
	// The baseline cannot exploit cross-attribute evidence: a name-only
	// reference and an email-only reference share nothing comparable.
	if res.SameEntity(c, d) {
		t.Error("IndepDec must not merge name-only with email-only references")
	}
	if res.ComparedPairs == 0 {
		t.Error("expected candidate pairs")
	}
}

func TestNoAssociationEvidence(t *testing.T) {
	// Two venue references with dissimilar names must not merge even when
	// linked from identical articles — IndepDec ignores associations.
	s := reference.NewStore()
	v1 := reference.New(schema.ClassVenue)
	v1.AddAtomic(schema.AttrName, "ACM SIGMOD")
	id1 := s.Add(v1)
	v2 := reference.New(schema.ClassVenue)
	v2.AddAtomic(schema.AttrName, "International Conference on Data Engineering")
	id2 := s.Add(v2)
	for i := 0; i < 2; i++ {
		a := reference.New(schema.ClassArticle)
		a.AddAtomic(schema.AttrTitle, "The exact same title appearing twice")
		a.AddAssoc(schema.AttrPublishedIn, reference.ID(i))
		s.Add(a)
	}
	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.SameEntity(id1, id2) {
		t.Error("venues must not merge without name similarity")
	}
	if got := res.PartitionCount(schema.ClassArticle); got != 1 {
		t.Errorf("identical titles should merge: %d partitions", got)
	}
}

func TestTransitiveClosure(t *testing.T) {
	s := reference.NewStore()
	a := person(s, "", "x@y.edu")
	person(s, "Alice Cooper", "x@y.edu")
	c := person(s, "Alice Cooper", "")
	res, err := New(schema.PIM(), DefaultConfig()).Reconcile(s)
	if err != nil {
		t.Fatal(err)
	}
	// a~b via email key, b~c via name: closure joins a and c.
	if !res.SameEntity(a, c) {
		t.Error("transitive closure should join a and c")
	}
	if res.PartitionCount(schema.ClassPerson) != 1 {
		t.Errorf("partitions = %d, want 1", res.PartitionCount(schema.ClassPerson))
	}
}

// TestWorkerCountInvariance: the parallel pair scoring must yield
// identical partitions regardless of worker count.
func TestWorkerCountInvariance(t *testing.T) {
	s := reference.NewStore()
	seedNames := []string{
		"Jennifer Widom", "Widom, J.", "Hector Garcia-Molina",
		"Garcia-Molina, H.", "Rakesh Agrawal", "Agrawal, R.",
		"Jeff Ullman", "Jeffrey Ullman", "Moshe Vardi", "Serge Abiteboul",
	}
	for i, n := range seedNames {
		r := reference.New(schema.ClassPerson)
		r.AddAtomic(schema.AttrName, n)
		if i%2 == 0 {
			r.AddAtomic(schema.AttrEmail, "u"+string(rune('a'+i))+"@x.edu")
		}
		s.Add(r)
	}
	canonical := func(workers int) string {
		cfg := DefaultConfig()
		cfg.Workers = workers
		res, err := New(schema.PIM(), cfg).Reconcile(s)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for i := 0; i < s.Len(); i++ {
			for j := i + 1; j < s.Len(); j++ {
				if res.SameEntity(reference.ID(i), reference.ID(j)) {
					out += "1"
				} else {
					out += "0"
				}
			}
		}
		return out
	}
	base := canonical(1)
	for _, w := range []int{2, 4, 8, 0} {
		if got := canonical(w); got != base {
			t.Fatalf("workers=%d changed the result", w)
		}
	}
}

func TestInvalidStoreRejected(t *testing.T) {
	s := reference.NewStore()
	s.Add(reference.New("Nope"))
	if _, err := New(schema.PIM(), DefaultConfig()).Reconcile(s); err == nil {
		t.Error("invalid store should be rejected")
	}
}
