package simfn

import (
	"testing"

	"refrecon/internal/obs"
)

// Compare's memoized path is the hottest call in graph construction: every
// candidate pair re-scores its attribute values through the pair cache.
// Observability must not tax it — with no counters attached the only added
// cost is a nil pointer compare, and even with counters attached the hit
// path is two atomic adds. These tests pin both variants at exactly zero
// allocations so a stray interface conversion or map-key boxing can never
// creep in behind the obs wiring.

var allocSink float64

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
	}
}

func TestCompareCacheHitZeroAllocs(t *testing.T) {
	l := NewLibrary()
	// Prime the cache; the measured loop then hits it every time.
	allocSink += l.Compare(EvName, "Michael Stonebraker", "M. Stonebraker")
	allocSink += l.Compare(EvTitle, "reference reconciliation", "refernce reconcilation")
	assertZeroAllocs(t, "Compare/cache-hit", func() {
		allocSink += l.Compare(EvName, "Michael Stonebraker", "M. Stonebraker")
		allocSink += l.Compare(EvTitle, "reference reconciliation", "refernce reconcilation")
	})
}

func TestCompareCacheHitZeroAllocsWithCounters(t *testing.T) {
	l := NewLibrary()
	c := obs.NewCounters()
	l.SetCounters(c)
	allocSink += l.Compare(EvName, "Michael Stonebraker", "M. Stonebraker")
	assertZeroAllocs(t, "Compare/cache-hit+counters", func() {
		allocSink += l.Compare(EvName, "Michael Stonebraker", "M. Stonebraker")
	})
	if c.SimfnCacheHits.Load() == 0 {
		t.Fatal("counters attached but no cache hits recorded")
	}
}
