package simfn

import (
	"testing"
)

func TestCompareName(t *testing.T) {
	l := NewLibrary()
	if s := l.Compare(EvName, "Michael Stonebraker", "Stonebraker, M."); s < 0.8 {
		t.Errorf("abbreviated name sim = %f", s)
	}
	if s := l.Compare(EvName, "Michael Stonebraker", "Jennifer Widom"); s > 0.4 {
		t.Errorf("unrelated name sim = %f", s)
	}
}

func TestCompareEmail(t *testing.T) {
	l := NewLibrary()
	if s := l.Compare(EvEmail, "a@b.edu", "a@b.edu"); s != 1 {
		t.Errorf("same email = %f", s)
	}
	if s := l.Compare(EvEmail, "not-an-address", "a@b.edu"); s != 0 {
		t.Errorf("unparseable email = %f", s)
	}
}

func TestCompareNameEmail(t *testing.T) {
	l := NewLibrary()
	if s := l.Compare(EvNameEmail, "Stonebraker, M.", "stonebraker@csail.mit.edu"); s < 0.85 {
		t.Errorf("name-vs-email = %f", s)
	}
	if s := l.Compare(EvNameEmail, "Stonebraker, M.", "garbage"); s != 0 {
		t.Errorf("name vs non-address = %f", s)
	}
}

func TestCompareTitleWithCorpus(t *testing.T) {
	l := NewLibrary()
	for _, title := range []string{
		"Distributed query processing in a relational data base system",
		"The design of Postgres",
		"Access path selection in a relational database management system",
		"Query optimization techniques",
	} {
		l.Titles.Add(title)
	}
	same := l.Compare(EvTitle,
		"Distributed query processing in a relational data base system",
		"Distributed query processing in a relational data base system")
	if same != 1 {
		t.Errorf("identical title = %f", same)
	}
	noisy := l.Compare(EvTitle,
		"Distributed query processing in a relational data base system",
		"Distributed query processing in a relational database system")
	if noisy < 0.7 {
		t.Errorf("noisy title = %f", noisy)
	}
	diff := l.Compare(EvTitle, "The design of Postgres", "Query optimization techniques")
	if diff > 0.4 {
		t.Errorf("different titles = %f", diff)
	}
}

func TestCompareTitleWithoutCorpus(t *testing.T) {
	// Library with no corpus docs must still work (falls back to Jaccard).
	l := NewLibrary()
	if s := l.Compare(EvTitle, "a b c", "a b c"); s != 1 {
		t.Errorf("fallback identical title = %f", s)
	}
}

func TestYearSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"1978", "1978", 1},
		{"1978", "1979", 0.5},
		{"1978", "1985", 0},
		{"98", "1998", 1},
		{"05", "2005", 1},
		{"", "", 0},
		{"unknown", "unknown", 1}, // non-numeric falls back to equality
		{"unknown", "other", 0},
	}
	for _, c := range cases {
		if got := YearSim(c.a, c.b); got != c.want {
			t.Errorf("YearSim(%q,%q) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestPagesSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"169-180", "169-180", 1},
		{"169-180", "pp. 169--180", 1},
		{"169-180", "169-185", 0.7},
		{"169-180", "170-180", 0.4},
		{"169-180", "200-210", 0},
		{"", "169-180", 0},
	}
	for _, c := range cases {
		if got := PagesSim(c.a, c.b); got != c.want {
			t.Errorf("PagesSim(%q,%q) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestAcronymSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"VLDB", "Very Large Data Bases", 1},
		{"Very Large Data Bases", "VLDB", 1},
		{"V.L.D.B.", "Very Large Data Bases", 1},
		{"PODS", "Principles of Database Systems", 1}, // stopword "of" skipped
		{"VLD", "Very Large Data Bases", 0.7},         // prefix acronym
		{"ICDE", "Very Large Data Bases", 0},
		{"X", "Some Conference", 0}, // too short
	}
	for _, c := range cases {
		if got := AcronymSim(c.a, c.b); got != c.want {
			t.Errorf("AcronymSim(%q,%q) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestVenueNameSim(t *testing.T) {
	l := NewLibrary()
	if s := l.Compare(EvVenueName, "ACM SIGMOD", "SIGMOD"); s < 0.9 {
		t.Errorf("containment venue = %f", s)
	}
	if s := l.Compare(EvVenueName, "VLDB", "Very Large Data Bases"); s != 1 {
		t.Errorf("acronym venue = %f", s)
	}
}

func TestCandidateThresholdsLiberal(t *testing.T) {
	// Every candidate threshold must be well below the merge threshold
	// 0.85; venue evidence is recorded unconditionally (threshold 0).
	for _, ev := range []string{EvName, EvEmail, EvNameEmail, EvTitle, EvVenueName, EvYear, EvPages, EvLocation, "other"} {
		if th := CandidateThreshold(ev); th < 0 || th >= 0.85 {
			t.Errorf("CandidateThreshold(%s) = %f not liberal", ev, th)
		}
	}
	for _, ev := range []string{EvVenueName, EvYear, EvLocation} {
		if CandidateThreshold(ev) != 0 {
			t.Errorf("CandidateThreshold(%s) should be unconditional", ev)
		}
	}
}

func TestAliasEvidence(t *testing.T) {
	for _, ev := range []string{EvEmail, EvVenueName} {
		if !AliasEvidence(ev) {
			t.Errorf("%s should be alias evidence", ev)
		}
	}
	for _, ev := range []string{EvName, EvTitle, EvYear, EvPages, EvNameEmail} {
		if AliasEvidence(ev) {
			t.Errorf("%s should not be alias evidence", ev)
		}
	}
}

func TestCompareUnknownEvidence(t *testing.T) {
	l := NewLibrary()
	if s := l.Compare("mystery", "abc", "abc"); s != 1 {
		t.Errorf("generic fallback identical = %f", s)
	}
}
