// Package simfn implements the similarity functions of §4 of the paper: a
// template S = S_rv + S_sb + S_wb where
//
//   - S_rv combines the real-valued evidence (attribute-value similarities
//     and association similarities) through a class-specific decision tree
//     of linear combinations that tolerates missing attributes and treats
//     key attributes specially;
//   - S_sb adds β for every merged strong-boolean incoming neighbor, gated
//     on S_rv ≥ t_rv;
//   - S_wb adds γ for every merged weak-boolean incoming neighbor (shared
//     contacts and co-authors), gated the same way.
//
// The package also defines the elementary value comparators — one per
// evidence type — and the liberal candidate thresholds used during graph
// construction (§3.1: "we use a relatively low similarity threshold in
// order not to lose important nodes").
package simfn

import (
	"strings"

	"refrecon/internal/emailaddr"
	"refrecon/internal/names"
	"refrecon/internal/obs"
	"refrecon/internal/strsim"
	"refrecon/internal/tokenizer"
)

// Evidence type labels. Value nodes and graph edges carry one of these;
// the class scoring functions dispatch on them.
const (
	EvName      = "name"      // person name vs person name
	EvEmail     = "email"     // email address vs email address
	EvNameEmail = "nameEmail" // person name vs email address (cross-attribute)
	EvTitle     = "title"     // article title vs article title
	EvYear      = "year"      // year vs year
	EvPages     = "pages"     // page range vs page range
	EvVenueName = "venueName" // venue name vs venue name
	EvLocation  = "location"  // venue location vs venue location
	EvAuthors   = "authors"   // author ref-pair similarity into an article pair
	EvVenue     = "venue"     // venue ref-pair similarity into an article pair
	EvArticle   = "article"   // article ref-pair merge into person/venue pairs (strong)
	EvContact   = "contact"   // shared email-contact (weak)
	EvCoAuthor  = "coauthor"  // shared co-author (weak)
)

// Library holds corpus statistics for the corpus-sensitive comparators:
// TF-IDF document frequencies for titles and venue names, and surname
// population statistics for the name-vs-email comparator. Build one per
// dataset with NewLibrary, feeding every title, venue name, and person
// name.
type Library struct {
	Titles *strsim.Corpus
	Venues *strsim.Corpus

	// surnameInitials maps each surname to the distinct first initials
	// seen with it; surnameFirsts to the distinct full first names.
	// Together they estimate how identifying a surname (or an
	// initial+surname combination) is in this dataset. givenSurnames maps
	// each full given name to the distinct surnames seen with it, for
	// judging given-name-shaped email account names.
	surnameInitials map[string]map[byte]bool
	surnameFirsts   map[string]map[string]bool
	givenSurnames   map[string]map[string]bool

	// statsGen counts name-population mutations; together with the title
	// and venue corpus generations it versions the pair-score cache (a
	// comparator's result may change whenever any statistic changes).
	statsGen uint64
	pairs    *pairCache
	parsed   *parseCache

	// ctr, when non-nil, receives pair-cache hit/miss counts. The nil
	// default keeps Compare free of atomic traffic — one pointer
	// comparison per call — so the zero-alloc hot-path pins hold.
	ctr *obs.Counters
}

// SetCounters attaches an observability counter set to the library's
// pair cache (nil detaches). Counter updates are atomic, so attaching is
// safe even when Compare runs on the parallel scoring pool.
func (l *Library) SetCounters(c *obs.Counters) { l.ctr = c }

// NewLibrary returns a Library with empty corpora.
func NewLibrary() *Library {
	return &Library{
		Titles:          strsim.NewCorpus(),
		Venues:          strsim.NewCorpus(),
		surnameInitials: make(map[string]map[byte]bool),
		surnameFirsts:   make(map[string]map[string]bool),
		givenSurnames:   make(map[string]map[string]bool),
		pairs:           newPairCache(),
		parsed:          newParseCache(),
	}
}

// generation versions the corpus-sensitive comparators: any statistics
// mutation (name population, title corpus, venue corpus) invalidates
// cached pair scores. Statistics mutate only between construction batches,
// never concurrently with Compare.
func (l *Library) generation() uint64 {
	g := l.statsGen
	if l.Titles != nil {
		g += l.Titles.Gen()
	}
	if l.Venues != nil {
		g += l.Venues.Gen()
	}
	return g
}

// AddPersonName records one person-name value in the population
// statistics.
func (l *Library) AddPersonName(raw string) {
	l.statsGen++
	n := names.Parse(raw)
	if n.Last == "" {
		return
	}
	last := strings.ReplaceAll(n.Last, " ", "")
	if l.surnameInitials[last] == nil {
		l.surnameInitials[last] = make(map[byte]bool)
	}
	if n.First == "" {
		return
	}
	l.surnameInitials[last][n.First[0]] = true
	if len(n.First) > 1 {
		if l.surnameFirsts[last] == nil {
			l.surnameFirsts[last] = make(map[string]bool)
		}
		l.surnameFirsts[last][n.First] = true
		formal := names.Formal(n.First)
		if l.givenSurnames[formal] == nil {
			l.givenSurnames[formal] = make(map[string]bool)
		}
		l.givenSurnames[formal][last] = true
	}
}

// LocalRarity implements emailaddr.LocalRarityFunc: how identifying is an
// email account name in this dataset's population. Known surnames reuse
// the surname statistics; known given names are judged by how many
// different surnames they pair with; unknown tokens (fusions like
// "jsmith") are treated as fairly distinctive.
func (l *Library) LocalRarity(local string) float64 {
	if l == nil || (len(l.surnameInitials) == 0 && len(l.givenSurnames) == 0) {
		return 1
	}
	if _, isSurname := l.surnameInitials[local]; isSurname {
		return l.NameRarity("", local)
	}
	if svs, isGiven := l.givenSurnames[names.Formal(local)]; isGiven {
		switch df := len(svs); {
		case df <= 1:
			return 1
		case df == 2:
			return 0.7
		case df == 3:
			return 0.5
		default:
			return 0.3
		}
	}
	return 0.9
}

// NameRarity implements emailaddr.RarityFunc over the recorded
// statistics: how identifying is this surname (initial == "") or this
// initial+surname combination in the dataset. With no statistics recorded
// it returns 1 (fully identifying), preserving standalone behaviour.
func (l *Library) NameRarity(initial, surname string) float64 {
	if l == nil || len(l.surnameInitials) == 0 {
		return 1
	}
	if initial == "" {
		switch df := len(l.surnameInitials[surname]); {
		case df <= 1:
			return 1
		case df == 2:
			return 0.75
		case df == 3:
			return 0.55
		case df <= 6:
			return 0.35
		default:
			return 0.2
		}
	}
	// Distinct full first names sharing the initial under this surname.
	df := 0
	for f := range l.surnameFirsts[surname] {
		if f[0] == initial[0] {
			df++
		}
	}
	switch {
	case df <= 1:
		return 1
	case df == 2:
		return 0.7
	default:
		return 0.4
	}
}

// Compare scores two raw attribute values under an evidence type, in
// [0,1]. Unknown evidence types fall back to a generic string similarity.
//
// Results are memoized in a bounded cache keyed by (evidence, a, b) and
// tagged with the library's statistics generation, so repeated value pairs
// are scored once per statistics epoch. Compare is safe for concurrent use
// as long as the library's statistics are not mutated concurrently.
func (l *Library) Compare(evidence, a, b string) float64 {
	if l == nil || l.pairs == nil {
		return clamp01(l.compare(evidence, a, b))
	}
	gen := l.generation()
	k := pairKey{evidence, a, b}
	if v, ok := l.pairs.get(gen, k); ok {
		if l.ctr != nil {
			l.ctr.SimfnCacheHits.Add(1)
		}
		return v
	}
	if l.ctr != nil {
		l.ctr.SimfnCacheMisses.Add(1)
	}
	v := clamp01(l.compare(evidence, a, b))
	l.pairs.put(gen, k, v)
	return v
}

// clamp01 is the last line of defense before a comparator output becomes a
// graph node similarity: the engine requires [0,1] and non-NaN, and a
// float-rounding excursion here would trip the invariant auditor.
func clamp01(s float64) float64 {
	switch {
	case s > 1:
		return 1
	case s >= 0:
		return s
	default: // negative or NaN
		return 0
	}
}

// parseName memoizes names.Parse per raw value.
func (l *Library) parseName(raw string) names.Name {
	if l == nil || l.parsed == nil {
		return names.Parse(raw)
	}
	return l.parsed.name(raw)
}

// parseEmail memoizes emailaddr.Parse per raw value.
func (l *Library) parseEmail(raw string) (emailaddr.Address, bool) {
	if l == nil || l.parsed == nil {
		return emailaddr.Parse(raw)
	}
	return l.parsed.email(raw)
}

// compare is the uncached comparator dispatch behind Compare.
func (l *Library) compare(evidence, a, b string) float64 {
	switch evidence {
	case EvName:
		return names.ParsedSimilarity(l.parseName(a), l.parseName(b))
	case EvEmail:
		ea, okA := l.parseEmail(a)
		eb, okB := l.parseEmail(b)
		if !okA || !okB {
			return 0
		}
		return emailaddr.SimRarity(ea, eb, l.LocalRarity)
	case EvNameEmail:
		// By convention a is the name and b is the address.
		eb, ok := l.parseEmail(b)
		if !ok {
			return 0
		}
		return emailaddr.NameSimRarity(a, eb, l.NameRarity)
	case EvTitle:
		return l.titleSim(a, b)
	case EvYear:
		return YearSim(a, b)
	case EvPages:
		return PagesSim(a, b)
	case EvVenueName:
		return l.venueNameSim(a, b)
	case EvLocation:
		return strsim.JaccardTokens(a, b)
	default:
		return strsim.MongeElkan(a, b, nil)
	}
}

func (l *Library) titleSim(a, b string) float64 {
	cos := 0.0
	if l != nil && l.Titles != nil && l.Titles.Docs() > 0 {
		cos = l.Titles.CosineSim(a, b)
	} else {
		cos = strsim.JaccardContentTokens(a, b)
	}
	ed := strsim.DamerauSim(a, b)
	if ed > cos {
		return ed
	}
	return cos
}

// venueStopwords are boilerplate tokens that appear in almost every venue
// name; comparing on them ("Proc. SIGMOD" vs "Proc. ICDE" share "proc")
// produces catastrophic false matches, so the comparator strips them first.
var venueStopwords = map[string]bool{
	"proc": true, "proceedings": true, "conference": true, "conf": true,
	"international": true, "intl": true, "annual": true, "symposium": true,
	"workshop": true, "journal": true, "j": true, "transactions": true,
	"trans": true, "ieee": true, "acm": true, "usenix": true,
	"technical": true, "report": true, "tr": true,
}

// venueCoreTokens returns a venue name's distinctive tokens; when
// filtering removes everything, the unfiltered content words are kept.
func venueCoreTokens(s string) []string {
	words := tokenizer.ContentWords(s)
	core := words[:0:0]
	for _, w := range words {
		if !venueStopwords[w] {
			core = append(core, w)
		}
	}
	if len(core) == 0 {
		return words
	}
	return core
}

// fuzzyOverlap is the overlap coefficient over two token lists where
// tokens match exactly or as near-typos (Jaro-Winkler >= 0.95). Character-
// level similarity between *different* tokens ("data" vs "database",
// "icde" vs "icdt") deliberately contributes nothing: distinct venues have
// editorially close names, and treating closeness as evidence collapses
// them.
func fuzzyOverlap(ta, tb []string) float64 {
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	matches := 0
	used := make([]bool, len(tb))
	for _, x := range ta {
		for j, y := range tb {
			if used[j] {
				continue
			}
			if x == y || strsim.JaroWinkler(x, y) >= 0.95 {
				used[j] = true
				matches++
				break
			}
		}
	}
	m := len(ta)
	if len(tb) < m {
		m = len(tb)
	}
	return float64(matches) / float64(m)
}

// venueTokenIDF weighs a venue token's distinctiveness using the venue
// corpus when available (1 otherwise).
func (l *Library) venueTokenIDF(tok string) float64 {
	if l == nil || l.Venues == nil || l.Venues.Docs() == 0 {
		return 1
	}
	return l.Venues.IDF(tok)
}

// weightedFuzzyJaccard is Jaccard over two token lists with per-token IDF
// weights and near-typo token matching. Jaccard (union-normalized) rather
// than the overlap coefficient: one venue's core being CONTAINED in
// another's ("Database Systems" inside "Principles of Database Systems")
// must not score 1 — the unmatched distinctive token is exactly what
// separates TODS from PODS.
func (l *Library) weightedFuzzyJaccard(ta, tb []string) float64 {
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	matched := 0.0
	union := 0.0
	used := make([]bool, len(tb))
	for _, x := range ta {
		w := l.venueTokenIDF(x)
		union += w
		for j, y := range tb {
			if used[j] {
				continue
			}
			if x == y || strsim.JaroWinkler(x, y) >= 0.95 {
				used[j] = true
				wy := l.venueTokenIDF(y)
				if wy < w {
					matched += wy
				} else {
					matched += w
				}
				break
			}
		}
	}
	for j, y := range tb {
		if !used[j] {
			union += l.venueTokenIDF(y)
		}
	}
	if union == 0 {
		return 0
	}
	return matched / union
}

func (l *Library) venueNameSim(a, b string) float64 {
	ca := venueCoreTokens(a)
	cb := venueCoreTokens(b)
	best := l.weightedFuzzyJaccard(ca, cb)
	// Boilerplate-token agreement ("ACM ..." vs "ACM ...") is weak but
	// real evidence; it lets the SIGMOD'78 pair of Example 1 reach the
	// boostable band without letting "Proc. X" match "Proc. Y" outright.
	if s := 0.5 * fuzzyOverlap(tokenizer.ContentWords(a), tokenizer.ContentWords(b)); s > best {
		best = s
	}
	if s := AcronymSim(a, b); s > best {
		best = s
	}
	if s := AcronymSim(strings.Join(ca, " "), strings.Join(cb, " ")); s > best {
		best = s
	}
	return best
}

// YearSim compares two year strings: equal years score 1, adjacent years
// 0.5 (off-by-one errors are common in citations), anything else 0.
// Non-numeric input falls back to exact comparison.
func YearSim(a, b string) float64 {
	ya, okA := parseYear(a)
	yb, okB := parseYear(b)
	if !okA || !okB {
		if tokenizer.EqualFolded(a, b) && a != "" {
			return 1
		}
		return 0
	}
	switch d := ya - yb; {
	case d == 0:
		return 1
	case d == 1 || d == -1:
		return 0.5
	default:
		return 0
	}
}

// YearGap returns the absolute difference between two year strings, or
// false when either does not parse as a year.
func YearGap(a, b string) (int, bool) {
	ya, okA := parseYear(a)
	yb, okB := parseYear(b)
	if !okA || !okB {
		return 0, false
	}
	d := ya - yb
	if d < 0 {
		d = -d
	}
	return d, true
}

func parseYear(s string) (int, bool) {
	digits := 0
	val := 0
	for _, r := range s {
		if r >= '0' && r <= '9' {
			val = val*10 + int(r-'0')
			digits++
			if digits > 4 {
				return 0, false
			}
		} else if digits > 0 {
			break
		}
	}
	if digits != 4 && digits != 2 {
		return 0, false
	}
	if digits == 2 { // "98" -> 1998, "05" -> 2005
		if val >= 30 {
			val += 1900
		} else {
			val += 2000
		}
	}
	return val, true
}

// PagesSim compares page-range strings ("169-180", "pp. 169--180").
// Matching first and last page scores 1; matching first page only scores
// 0.7; any shared page number scores 0.4.
func PagesSim(a, b string) float64 {
	na := pageNumbers(a)
	nb := pageNumbers(b)
	if len(na) == 0 || len(nb) == 0 {
		return 0
	}
	if na[0] == nb[0] {
		if na[len(na)-1] == nb[len(nb)-1] {
			return 1
		}
		return 0.7
	}
	for _, x := range na {
		for _, y := range nb {
			if x == y {
				return 0.4
			}
		}
	}
	return 0
}

func pageNumbers(s string) []int {
	var out []int
	cur, in := 0, false
	flush := func() {
		if in {
			out = append(out, cur)
			cur, in = 0, false
		}
	}
	for _, r := range s {
		if r >= '0' && r <= '9' {
			cur = cur*10 + int(r-'0')
			in = true
		} else {
			flush()
		}
	}
	flush()
	return out
}

// AcronymSim reports whether one string looks like an acronym of the
// other's content words ("VLDB" vs "Very Large Data Bases"), returning 1
// on a full acronym match, 0.7 on a prefix acronym match, else 0.
func AcronymSim(a, b string) float64 {
	score := func(short, long string) float64 {
		s := tokenizer.Normalize(strings.ReplaceAll(short, ".", ""))
		s = strings.ReplaceAll(s, " ", "")
		if len(s) < 2 || len(s) > 8 {
			return 0
		}
		// Acronyms sometimes include stopword letters (PODS = Principles
		// Of Database Systems) and sometimes not (VLDB): try both token
		// streams.
		best := 0.0
		for _, words := range [][]string{tokenizer.ContentWords(long), tokenizer.Words(long)} {
			if len(words) < 2 {
				continue
			}
			var initials strings.Builder
			for _, w := range words {
				initials.WriteByte(w[0])
			}
			ini := initials.String()
			switch {
			case s == ini:
				return 1
			case strings.HasPrefix(ini, s) || strings.HasPrefix(s, ini):
				if best < 0.7 {
					best = 0.7
				}
			}
		}
		return best
	}
	if x := score(a, b); x > 0 {
		return x
	}
	return score(b, a)
}

// CandidateThreshold returns the liberal similarity above which a value
// pair earns a node in the dependency graph (§3.1's "relatively low
// similarity threshold").
func CandidateThreshold(evidence string) float64 {
	switch evidence {
	case EvName:
		return 0.5
	case EvEmail:
		return 0.55
	case EvNameEmail:
		return 0.45
	case EvTitle:
		return 0.45
	case EvVenueName, EvYear, EvLocation:
		// Venue evidence is recorded unconditionally: its similarity
		// function renormalizes over *present* evidence, so a pruned
		// low-similarity node would masquerade as a missing attribute and
		// inflate the remaining evidence (a same-year pair of unrelated
		// venues must not score 1.0 on year alone). Year and location
		// nodes are shared across many pairs, so this is cheap.
		return 0
	case EvPages:
		return 0.35
	default:
		return 0.5
	}
}

// AliasEvidence reports whether merged references imply their values of
// this evidence type are aliases of one another (the strong-boolean edge
// from a reference pair back to its value pairs, e.g. n6 in Figure 2: once
// conferences c1 and c2 merge, their names are known aliases). Alias
// learning applies only to attributes whose values identify a single
// entity: email addresses (keys) and venue names. Person names are
// excluded — "Wei Li" and "Li, W." co-occurring on one person says nothing
// about the *other* Wei Lis in the corpus, and aliasing them collapses
// every person sharing those presentations.
func AliasEvidence(evidence string) bool {
	switch evidence {
	case EvEmail, EvVenueName:
		return true
	default:
		return false
	}
}
