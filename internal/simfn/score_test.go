package simfn

import (
	"testing"

	"refrecon/internal/depgraph"
	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func evWith(real map[string]float64) Evidence {
	return Evidence{Real: real}
}

func TestSRVPersonKeyBranch(t *testing.T) {
	ev := evWith(map[string]float64{EvEmail: 1, EvName: 0.1})
	if got := SRV(schema.ClassPerson, ev); got != 1 {
		t.Errorf("email key should dominate: %f", got)
	}
}

func TestSRVPersonNameOnly(t *testing.T) {
	ev := evWith(map[string]float64{EvName: 0.9})
	if got := SRV(schema.ClassPerson, ev); got != 0.9 {
		t.Errorf("name-only = %f", got)
	}
}

func TestSRVPersonMissingAttrsNotPenalized(t *testing.T) {
	// A perfect name must not be dragged down by a low email similarity
	// (different addresses of the same person are routine, §4).
	withLowEmail := SRV(schema.ClassPerson, evWith(map[string]float64{EvName: 1, EvEmail: 0.2}))
	nameOnly := SRV(schema.ClassPerson, evWith(map[string]float64{EvName: 1}))
	if withLowEmail < nameOnly {
		t.Errorf("low email penalized the name: %f < %f", withLowEmail, nameOnly)
	}
}

func TestSRVPersonCrossOnly(t *testing.T) {
	// p8 (email only) vs p5 (name only): only nameEmail evidence exists.
	ev := evWith(map[string]float64{EvNameEmail: 0.9})
	got := SRV(schema.ClassPerson, ev)
	if got < 0.7 || got >= 0.85 {
		t.Errorf("cross-only should land in the boostable band [0.7,0.85): %f", got)
	}
}

func TestSRVPersonMonotone(t *testing.T) {
	base := evWith(map[string]float64{EvName: 0.7, EvEmail: 0.7, EvNameEmail: 0.6})
	raised := evWith(map[string]float64{EvName: 0.8, EvEmail: 0.7, EvNameEmail: 0.6})
	if SRV(schema.ClassPerson, raised) < SRV(schema.ClassPerson, base) {
		t.Error("SRV not monotone in name evidence")
	}
}

func TestSRVArticle(t *testing.T) {
	// Exact title + exact pages is a key.
	key := evWith(map[string]float64{EvTitle: 1, EvPages: 1})
	if got := SRV(schema.ClassArticle, key); got != 1 {
		t.Errorf("title+pages key = %f", got)
	}
	// Title alone, exact: renormalized weighted average = 1.
	titleOnly := evWith(map[string]float64{EvTitle: 1})
	if got := SRV(schema.ClassArticle, titleOnly); got != 1 {
		t.Errorf("exact title alone = %f", got)
	}
	// Noisy title with good authors is below merge threshold but above
	// t_rv, and improves when the venue reconciles.
	before := evWith(map[string]float64{EvTitle: 0.85, EvAuthors: 0.9, EvVenue: 0.2})
	after := evWith(map[string]float64{EvTitle: 0.85, EvAuthors: 0.9, EvVenue: 1})
	sb, sa := SRV(schema.ClassArticle, before), SRV(schema.ClassArticle, after)
	if !(sb < sa) {
		t.Errorf("venue reconciliation should raise article sim: %f -> %f", sb, sa)
	}
	if sb < 0.7 {
		t.Errorf("before = %f, want >= t_rv", sb)
	}
}

func TestSRVVenue(t *testing.T) {
	ev := evWith(map[string]float64{EvVenueName: 1, EvYear: 1})
	if got := SRV(schema.ClassVenue, ev); got != 1 {
		t.Errorf("exact venue = %f", got)
	}
	// Name only, weak: still positive (weights renormalize).
	weak := evWith(map[string]float64{EvVenueName: 0.3})
	if got := SRV(schema.ClassVenue, weak); got != 0.3 {
		t.Errorf("weak venue name = %f", got)
	}
}

func TestSRVGeneric(t *testing.T) {
	if got := SRV("Widget", evWith(map[string]float64{"a": 0.4, "b": 0.8})); !close(got, 0.6) {
		t.Errorf("generic average = %f", got)
	}
	if got := SRV("Widget", evWith(map[string]float64{})); got != 0 {
		t.Errorf("no evidence = %f", got)
	}
}

// buildPersonNode wires a small graph around one person pair and returns
// the node.
func buildPersonNode(t *testing.T, nameSim float64, strongMerged, weakMerged int) *depgraph.Node {
	t.Helper()
	g := depgraph.New()
	n := g.AddRefPair(0, 1, schema.ClassPerson)
	v := g.AddValuePair(EvName, "a", "b", nameSim)
	g.AddEdge(v, n, depgraph.RealValued, EvName)
	for i := 0; i < strongMerged; i++ {
		m := g.AddRefPair(reference.ID(10+2*i), reference.ID(11+2*i), schema.ClassArticle)
		m.SetStatus(depgraph.Merged)
		g.AddEdge(m, n, depgraph.StrongBoolean, EvArticle)
	}
	for i := 0; i < weakMerged; i++ {
		m := g.AddRefPair(reference.ID(100+2*i), reference.ID(101+2*i), schema.ClassPerson)
		m.SetStatus(depgraph.Merged)
		g.AddEdge(m, n, depgraph.WeakBoolean, EvContact)
	}
	return n
}

func TestScorerBoosts(t *testing.T) {
	s := NewScorer()
	// S_rv = 0.75 >= t_rv 0.7; one strong (+0.1) and two weak (+0.1).
	n := buildPersonNode(t, 0.75, 1, 2)
	got := s.Score(n)
	want := 0.75 + 0.1 + 2*0.05
	if !close(got, want) {
		t.Errorf("Score = %f, want %f", got, want)
	}
}

func TestScorerGate(t *testing.T) {
	s := NewScorer()
	// S_rv = 0.5 < t_rv: boolean evidence must be ignored.
	n := buildPersonNode(t, 0.5, 3, 3)
	if got := s.Score(n); !close(got, 0.5) {
		t.Errorf("gated Score = %f, want 0.5", got)
	}
}

func TestScorerClamp(t *testing.T) {
	s := NewScorer()
	n := buildPersonNode(t, 0.8, 5, 5) // 0.8 + 0.5 + 0.25 -> clamp 1
	if got := s.Score(n); got != 1 {
		t.Errorf("clamped Score = %f", got)
	}
}

func TestScorerValuePairAlias(t *testing.T) {
	s := NewScorer()
	g := depgraph.New()
	v := g.AddValuePair(EvVenueName, "sigmod", "acm conf on mgmt of data", 0.2)
	venue := g.AddRefPair(0, 1, schema.ClassVenue)
	g.AddEdge(venue, v, depgraph.StrongBoolean, EvVenue)
	if got := s.Score(v); !close(got, 0.2) {
		t.Errorf("unmerged alias = %f", got)
	}
	venue.SetStatus(depgraph.Merged)
	if got := s.Score(v); got != 1 {
		t.Errorf("merged alias = %f", got)
	}
}

func TestGatherNonMerge(t *testing.T) {
	g := depgraph.New()
	n := g.AddRefPair(0, 1, schema.ClassPerson)
	v := g.AddValuePair(EvEmail, "a@s.edu", "b@s.edu", 0.3)
	g.MarkNonMerge(v)
	g.AddEdge(v, n, depgraph.RealValued, EvEmail)
	ev := Gather(n)
	if ev.Has(EvEmail) {
		t.Error("non-merge source should not contribute real evidence")
	}
	if !ev.NonMergeReal[EvEmail] {
		t.Error("non-merge source should be flagged")
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p[schema.ClassVenue].Beta != 0.2 || p[schema.ClassPerson].Beta != 0.1 {
		t.Error("beta values off the published settings")
	}
	if p[schema.ClassVenue].TRV != 0.1 || p[schema.ClassArticle].TRV != 0.7 {
		t.Error("t_rv values off the published settings")
	}
	if p[schema.ClassPerson].Gamma != 0.05 {
		t.Error("gamma off the published settings")
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
