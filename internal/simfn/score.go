package simfn

import (
	"sort"

	"refrecon/internal/depgraph"
	"refrecon/internal/schema"
)

// ClassParams are the per-class tuning constants of §4/§5.2.
type ClassParams struct {
	// TRV is the S_rv gate below which boolean-valued evidence is ignored.
	TRV float64
	// Beta is the per-merged-strong-boolean-neighbor increment.
	Beta float64
	// Gamma is the per-merged-weak-boolean-neighbor increment.
	Gamma float64
}

// PaperParams returns the published parameter set (§5.2): β = 0.1 (0.2 for
// Venue), γ = 0.05, t_rv = 0.7 for Person and Article, 0.1 for Venue.
func PaperParams() map[string]ClassParams {
	return map[string]ClassParams{
		schema.ClassPerson:  {TRV: 0.7, Beta: 0.1, Gamma: 0.05},
		schema.ClassArticle: {TRV: 0.7, Beta: 0.1, Gamma: 0.05},
		schema.ClassVenue:   {TRV: 0.1, Beta: 0.2, Gamma: 0.05},
	}
}

// Evidence is the digest of a node's incoming edges: per evidence type, the
// maximum similarity among real-valued sources (§4's MAX rule for
// multi-valued attributes), plus the counts of merged boolean-valued
// sources.
type Evidence struct {
	Real         map[string]float64
	StrongMerged int
	WeakMerged   int
	// NonMergeReal marks evidence types for which some incoming
	// real-valued source is a non-merge node (hard negative evidence the
	// decision tree must respect, §4).
	NonMergeReal map[string]bool
}

// Gather digests the incoming edges of a reference-pair node.
func Gather(n *depgraph.Node) Evidence {
	ev := Evidence{Real: make(map[string]float64)}
	for _, e := range n.In() {
		src := e.From
		switch e.Dep {
		case depgraph.RealValued:
			if src.Status() == depgraph.NonMerge {
				if ev.NonMergeReal == nil {
					ev.NonMergeReal = make(map[string]bool)
				}
				ev.NonMergeReal[e.Evidence] = true
				continue
			}
			// Presence matters even at similarity zero: an evidence type
			// that was compared and found dissimilar must not masquerade
			// as a missing attribute (the renormalizing similarity
			// functions would otherwise inflate the remaining evidence).
			if cur, ok := ev.Real[e.Evidence]; !ok || src.Sim() > cur {
				ev.Real[e.Evidence] = src.Sim()
			}
		case depgraph.StrongBoolean:
			if src.Status() == depgraph.Merged {
				ev.StrongMerged++
			}
		case depgraph.WeakBoolean:
			if src.Status() == depgraph.Merged {
				ev.WeakMerged++
			}
		}
	}
	return ev
}

// Has reports whether any real-valued evidence of the type is present.
func (ev Evidence) Has(t string) bool { _, ok := ev.Real[t]; return ok }

// EvidenceView is the read-only evidence access the decision trees consume.
// Two implementations exist: Evidence (a full rescan of the incoming edges,
// the reference semantics) and depgraph.EvidenceDigest (the delta-maintained
// aggregate, O(changed neighbors) per step). The contract for bit-identical
// scores: both enumerate present evidence kinds in lexicographic order and
// expose the same per-kind maxima and boolean counts.
type EvidenceView interface {
	// RealEvidence returns the maximum similarity among real-valued sources
	// of the kind and whether any such source is present.
	RealEvidence(kind string) (float64, bool)
	// EachRealEvidence visits the present kinds in lexicographic order.
	EachRealEvidence(fn func(kind string, max float64))
	// StrongMergedCount returns the number of merged strong-boolean sources.
	StrongMergedCount() int
	// WeakMergedCount returns the number of merged weak-boolean sources.
	WeakMergedCount() int
}

// RealEvidence implements EvidenceView.
func (ev Evidence) RealEvidence(kind string) (float64, bool) {
	v, ok := ev.Real[kind]
	return v, ok
}

// EachRealEvidence implements EvidenceView: kinds are visited in sorted
// order so that accumulation order (and thus float rounding) matches the
// digest path bit for bit.
func (ev Evidence) EachRealEvidence(fn func(kind string, max float64)) {
	kinds := make([]string, 0, len(ev.Real))
	for k := range ev.Real {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fn(k, ev.Real[k])
	}
}

// StrongMergedCount implements EvidenceView.
func (ev Evidence) StrongMergedCount() int { return ev.StrongMerged }

// WeakMergedCount implements EvidenceView.
func (ev Evidence) WeakMergedCount() int { return ev.WeakMerged }

// Scorer scores dependency-graph nodes with the paper's similarity
// template. It implements depgraph.Scorer.
type Scorer struct {
	Params map[string]ClassParams
	// Rescan forces the reference scoring path: every Score call digests
	// the node's full incoming neighborhood with Gather. When false (the
	// default) Score reads the node's delta-maintained evidence digest,
	// making each propagation step O(changed neighbors). Both paths
	// produce bit-identical similarities; the equivalence tests enforce it.
	Rescan bool
}

// NewScorer returns a Scorer with the published parameters.
func NewScorer() *Scorer { return &Scorer{Params: PaperParams()} }

// Score implements depgraph.Scorer.
func (s *Scorer) Score(n *depgraph.Node) float64 {
	if n.Kind() == depgraph.ValuePair {
		return s.scoreValuePairNode(n)
	}
	var view EvidenceView
	if s.Rescan {
		view = Gather(n)
	} else {
		view = n.Digest()
	}
	srv := srvClass(n.Class(), view)
	p, ok := s.Params[n.Class()]
	if !ok {
		// Custom classes default to the Person/Article settings.
		p = ClassParams{TRV: 0.7, Beta: 0.1, Gamma: 0.05}
	}
	total := srv
	if srv >= p.TRV {
		total += p.Beta * float64(view.StrongMergedCount())
		total += p.Gamma * float64(view.WeakMergedCount())
	}
	if total > 1 {
		total = 1
	}
	return total
}

// scoreValuePairNode implements alias learning: a value pair's similarity
// is its precomputed score, raised to 1 once any reference pair it
// identifies (an incoming strong-boolean neighbor) has merged — e.g. two
// venue names become known aliases when their venues reconcile.
func (s *Scorer) scoreValuePairNode(n *depgraph.Node) float64 {
	if s.Rescan {
		return scoreValuePair(n)
	}
	if n.Digest().StrongMergedCount() > 0 {
		return 1
	}
	return n.Sim()
}

// scoreValuePair is the rescan form of alias learning.
func scoreValuePair(n *depgraph.Node) float64 {
	s := n.Sim()
	for _, e := range n.In() {
		if e.Dep == depgraph.StrongBoolean && e.From.Status() == depgraph.Merged {
			return 1
		}
	}
	return s
}

// SRV computes the class-specific S_rv decision tree over the gathered
// evidence. Every branch is monotone in the evidence values.
func SRV(class string, ev Evidence) float64 { return srvClass(class, ev) }

// srvClass dispatches the class decision tree over any evidence view.
func srvClass(class string, ev EvidenceView) float64 {
	switch class {
	case schema.ClassPerson:
		return srvPerson(ev)
	case schema.ClassArticle:
		return srvArticle(ev)
	case schema.ClassVenue:
		return srvVenue(ev)
	default:
		return srvGeneric(ev)
	}
}

// srvPerson is the Person decision tree:
//
//	key branch:   identical email address ⇒ 1 (email is a key attribute);
//	name+email:   0.6·name + 0.4·email       (when email agreement is high)
//	name+cross:   0.65·name + 0.35·nameEmail (name corroborated by address)
//	name only:    name
//	cross only:   0.9·nameEmail              (reference lacking a name)
//	email only:   0.9·email
//
// The branches are alternatives; the best applicable one wins, which keeps
// the function monotone and avoids penalizing missing or multi-valued
// attributes (§4).
func srvPerson(ev EvidenceView) float64 {
	name, hasName := ev.RealEvidence(EvName)
	email, hasEmail := ev.RealEvidence(EvEmail)
	cross, hasCross := ev.RealEvidence(EvNameEmail)

	if hasEmail && email >= 1 {
		return 1 // key attribute agreement
	}
	best := 0.0
	if hasName {
		best = name
		if hasEmail && email >= 0.6 {
			best = maxf(best, 0.6*name+0.4*email)
		}
		if hasCross && cross >= 0.5 {
			best = maxf(best, 0.65*name+0.35*cross)
		}
	}
	if hasCross {
		best = maxf(best, 0.9*cross)
	}
	if hasEmail {
		best = maxf(best, 0.9*email)
	}
	return best
}

// srvArticle is the Article decision tree: a weighted average over the
// evidence types that are present (missing attributes are excluded rather
// than scored 0, §4), with title dominating. An exact title plus exact
// pages acts as a key.
func srvArticle(ev EvidenceView) float64 {
	title, hasTitle := ev.RealEvidence(EvTitle)
	pages, hasPages := ev.RealEvidence(EvPages)
	if hasTitle && title >= 1 && hasPages && pages >= 1 {
		return 1
	}
	// Titles gate everything: agreeing authors, venue, and year are
	// routine for *different* articles (same group, same conference), so
	// corroborating evidence only counts once the titles are already
	// close. The branch structure stays monotone: raising the title
	// similarity can only raise the score.
	if !hasTitle || title < 0.75 {
		return title
	}
	weights := []struct {
		t string
		w float64
	}{
		{EvTitle, 0.75},
		{EvAuthors, 0.10},
		{EvVenue, 0.07},
		{EvYear, 0.04},
		{EvPages, 0.04},
	}
	return weightedPresent(ev, weights)
}

// srvVenue is the Venue decision tree. A venue reference denotes an
// *edition* — Figure 1's c1 and c2 are both SIGMOD'78 — so the year
// carries as much weight as the name: two mentions with compatible names
// and the same year are probably the same edition, while an identical name
// with a different year is a different edition. Venue t_rv is very low
// (0.1), so article reconciliations readily push edition pairs over the
// threshold (the paper's venue-recall machinery, and on noisy citation
// data also its venue-precision cost).
func srvVenue(ev EvidenceView) float64 {
	weights := []struct {
		t string
		w float64
	}{
		{EvVenueName, 0.40},
		{EvYear, 0.50},
		{EvLocation, 0.10},
	}
	return weightedPresent(ev, weights)
}

// srvGeneric averages whatever evidence is present with equal weight; used
// for classes without a specialized function. Kinds are accumulated in the
// view's sorted enumeration order so both evidence views round identically.
func srvGeneric(ev EvidenceView) float64 {
	sum, count := 0.0, 0
	ev.EachRealEvidence(func(_ string, v float64) {
		sum += v
		count++
	})
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func weightedPresent(ev EvidenceView, weights []struct {
	t string
	w float64
}) float64 {
	num, den := 0.0, 0.0
	for _, wt := range weights {
		if v, ok := ev.RealEvidence(wt.t); ok {
			num += wt.w * v
			den += wt.w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
