package simfn

import (
	"testing"
)

func populated() *Library {
	l := NewLibrary()
	for _, n := range []string{
		"Michael Stonebraker",
		"Ming Yuan", "Ling Yuan", "Hao Yuan",
		"Cynthia Price", "Cynthia Diaz", "Cynthia Ortiz", "Cynthia Reyes",
		"Wei Li", "Wei Zhang",
		"Garcia-Molina, H.",
	} {
		l.AddPersonName(n)
	}
	return l
}

func TestNameRaritySurname(t *testing.T) {
	l := populated()
	if r := l.NameRarity("", "stonebraker"); r != 1 {
		t.Errorf("unique surname = %f", r)
	}
	if r := l.NameRarity("", "yuan"); r > 0.6 {
		t.Errorf("3-initial surname = %f, want <= 0.6", r)
	}
	if r := l.NameRarity("", "unknownname"); r != 1 {
		t.Errorf("unseen surname should default to identifying: %f", r)
	}
}

func TestNameRarityInitial(t *testing.T) {
	l := populated()
	// Only one full first name starting with 'm' under "stonebraker".
	if r := l.NameRarity("m", "stonebraker"); r != 1 {
		t.Errorf("unique initial = %f", r)
	}
	// "yuan" has m(ing), l(ing), h(ao): each initial unique -> 1.
	if r := l.NameRarity("m", "yuan"); r != 1 {
		t.Errorf("distinct initials = %f", r)
	}
}

func TestNameRarityEmptyLibrary(t *testing.T) {
	l := NewLibrary()
	if r := l.NameRarity("", "anything"); r != 1 {
		t.Errorf("empty library rarity = %f", r)
	}
	var nilLib *Library
	if r := nilLib.NameRarity("", "anything"); r != 1 {
		t.Errorf("nil library rarity = %f", r)
	}
}

func TestLocalRarity(t *testing.T) {
	l := populated()
	// A surname-shaped local reuses surname statistics.
	if r := l.LocalRarity("stonebraker"); r != 1 {
		t.Errorf("rare surname local = %f", r)
	}
	if r := l.LocalRarity("yuan"); r > 0.6 {
		t.Errorf("common surname local = %f", r)
	}
	// A given-name-shaped local is judged by how many surnames it spans.
	if r := l.LocalRarity("cynthia"); r > 0.35 {
		t.Errorf("4-surname given local = %f, want <= 0.35", r)
	}
	if r := l.LocalRarity("ming"); r != 1 {
		t.Errorf("single-surname given local = %f", r)
	}
	// Nicknames resolve to their formal form.
	l.AddPersonName("Michael Carey")
	if r := l.LocalRarity("mike"); r > 0.8 {
		t.Errorf("nickname of a 2-surname given = %f", r)
	}
	// Opaque handles are treated as fairly distinctive.
	if r := l.LocalRarity("falcon73"); r != 0.9 {
		t.Errorf("opaque handle = %f, want 0.9", r)
	}
}

func TestCompareEmailUsesLocalRarity(t *testing.T) {
	l := populated()
	// Same local "cynthia" on different servers: common given name, so
	// the evidence must stay below the boostable band.
	s := l.Compare(EvEmail, "cynthia@cmu.edu", "cynthia@csail.mit.edu")
	if s >= 0.7 {
		t.Errorf("common-local same-account evidence = %f, want < 0.7", s)
	}
	// Rare surname local keeps strong evidence.
	s = l.Compare(EvEmail, "stonebraker@csail.mit.edu", "stonebraker@berkeley.edu")
	if s < 0.8 {
		t.Errorf("rare-local same-account evidence = %f, want >= 0.8", s)
	}
}

func TestCompareNameEmailUsesNameRarity(t *testing.T) {
	l := populated()
	rare := l.Compare(EvNameEmail, "Stonebraker, M.", "stonebraker@csail.mit.edu")
	common := l.Compare(EvNameEmail, "Yuan, M.", "yuan@gmail.com")
	if !(rare > common) {
		t.Errorf("rare-surname cross evidence %f should exceed common %f", rare, common)
	}
	if rare < 0.85 {
		t.Errorf("rare = %f, want >= 0.85", rare)
	}
	if common > 0.8 {
		t.Errorf("common = %f, want <= 0.8", common)
	}
}

func TestAddPersonNameIgnoresNoSurname(t *testing.T) {
	l := NewLibrary()
	l.AddPersonName("mike")
	l.AddPersonName("")
	if r := l.NameRarity("", "mike"); r != 1 {
		t.Errorf("bare given must not register as a surname: %f", r)
	}
}
