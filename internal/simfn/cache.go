package simfn

import (
	"sync"

	"refrecon/internal/emailaddr"
	"refrecon/internal/names"
)

// This file implements the two cache layers backing Library.Compare:
//
//   - a bounded, sharded pair-score cache keyed by (evidence, a, b), so a
//     value pair that recurs across many reference pairs — ubiquitous in
//     PIM and Cora data, where a handful of name spellings and venue
//     strings cover most references — is scored once;
//   - memoization of parsed names and email addresses keyed by the raw
//     value, so a value shared by many *distinct* pairs is parsed once
//     instead of once per comparison.
//
// Both caches are safe for concurrent readers and writers: the parallel
// scoring phase of graph construction calls Compare from many goroutines,
// and the serial association/enrichment wiring path re-compares values
// through the same entry points.
//
// Corpus-sensitive comparators (TF-IDF titles, venue IDF, name-population
// rarity) change meaning when library statistics grow, so pair-score
// entries are tagged with the library's statistics generation and a stale
// shard is discarded wholesale on first access after the statistics
// change. Within one construction batch the statistics are frozen (all
// Add* calls precede all Compare calls), so the tag is stable exactly when
// cache hits are sound. Parsed names and addresses are pure functions of
// the raw string and never invalidate.

const (
	// cacheShards spreads lock contention; a power of two so the shard
	// index is a mask.
	cacheShards = 32
	// pairShardCap bounds each pair-score shard. When a shard fills it is
	// reset rather than evicted entry-by-entry: the population of repeated
	// value pairs in one dataset is far below the bound, so resets only
	// guard against adversarial value diversity.
	pairShardCap = 4096
	// parseShardCap bounds each parse-memo shard.
	parseShardCap = 4096
)

// fnv1a hashes the cache key strings (FNV-1a over all parts with a
// separator, to shard uniformly without allocating a joined key).
func fnv1a(parts ...string) uint32 {
	h := uint32(2166136261)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint32(p[i])
			h *= 16777619
		}
		h ^= 0xff // separator so ("ab","c") and ("a","bc") differ
		h *= 16777619
	}
	return h
}

// pairKey identifies one scored value comparison.
type pairKey struct {
	evidence, a, b string
}

type pairShard struct {
	mu  sync.RWMutex
	gen uint64
	m   map[pairKey]float64
}

// pairCache is the sharded (evidence, valueA, valueB) -> similarity cache.
type pairCache struct {
	shards [cacheShards]pairShard
}

func newPairCache() *pairCache { return &pairCache{} }

func (c *pairCache) shard(k pairKey) *pairShard {
	return &c.shards[fnv1a(k.evidence, k.a, k.b)&(cacheShards-1)]
}

// get returns the cached score for k at statistics generation gen.
func (c *pairCache) get(gen uint64, k pairKey) (float64, bool) {
	s := c.shard(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.gen != gen || s.m == nil {
		return 0, false
	}
	v, ok := s.m[k]
	return v, ok
}

// put records the score for k under generation gen, resetting the shard if
// it was filled under an older generation or has hit its bound.
func (c *pairCache) put(gen uint64, k pairKey, v float64) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen || s.m == nil || len(s.m) >= pairShardCap {
		s.m = make(map[pairKey]float64, 64)
		s.gen = gen
	}
	s.m[k] = v
}

// parsedAddr memoizes one emailaddr.Parse result (value + ok flag).
type parsedAddr struct {
	addr emailaddr.Address
	ok   bool
}

type nameShard struct {
	mu sync.RWMutex
	m  map[string]names.Name
}

type addrShard struct {
	mu sync.RWMutex
	m  map[string]parsedAddr
}

// parseCache memoizes parsed person names and email addresses by raw
// string. Parsing is pure, so entries never invalidate; shards reset when
// they hit their bound.
type parseCache struct {
	names  [cacheShards]nameShard
	emails [cacheShards]addrShard
}

func newParseCache() *parseCache { return &parseCache{} }

func (c *parseCache) name(raw string) names.Name {
	s := &c.names[fnv1a(raw)&(cacheShards-1)]
	s.mu.RLock()
	n, ok := s.m[raw]
	s.mu.RUnlock()
	if ok {
		return n
	}
	n = names.Parse(raw)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= parseShardCap {
		s.m = make(map[string]names.Name, 64)
	}
	s.m[raw] = n
	s.mu.Unlock()
	return n
}

func (c *parseCache) email(raw string) (emailaddr.Address, bool) {
	s := &c.emails[fnv1a(raw)&(cacheShards-1)]
	s.mu.RLock()
	p, ok := s.m[raw]
	s.mu.RUnlock()
	if ok {
		return p.addr, p.ok
	}
	a, aok := emailaddr.Parse(raw)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= parseShardCap {
		s.m = make(map[string]parsedAddr, 64)
	}
	s.m[raw] = parsedAddr{a, aok}
	s.mu.Unlock()
	return a, aok
}
