package metrics

import (
	"math"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func TestBCubedPerfect(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	a2 := addPerson(s, "A")
	b1 := addPerson(s, "B")
	rep := BCubed(s, schema.ClassPerson, [][]reference.ID{{a1, a2}, {b1}})
	if rep.Precision != 1 || rep.Recall != 1 || rep.F1 != 1 {
		t.Errorf("perfect = %+v", rep)
	}
	if rep.References != 3 {
		t.Errorf("references = %d", rep.References)
	}
}

func TestBCubedOverMerge(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	a2 := addPerson(s, "A")
	b1 := addPerson(s, "B")
	rep := BCubed(s, schema.ClassPerson, [][]reference.ID{{a1, a2, b1}})
	// Precision: A refs get 2/3 each, B ref gets 1/3 -> (2/3+2/3+1/3)/3 = 5/9.
	if math.Abs(rep.Precision-5.0/9) > 1e-9 {
		t.Errorf("precision = %f, want 5/9", rep.Precision)
	}
	if rep.Recall != 1 {
		t.Errorf("recall = %f", rep.Recall)
	}
}

func TestBCubedUnderMerge(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	a2 := addPerson(s, "A")
	rep := BCubed(s, schema.ClassPerson, [][]reference.ID{{a1}, {a2}})
	if rep.Precision != 1 {
		t.Errorf("precision = %f", rep.Precision)
	}
	// Each A ref sees 1 of its 2 gold mates -> recall 1/2.
	if math.Abs(rep.Recall-0.5) > 1e-9 {
		t.Errorf("recall = %f, want 0.5", rep.Recall)
	}
}

func TestBCubedWeighsReferencesNotPairs(t *testing.T) {
	// One big entity split in half plus many correct singletons: pairwise
	// recall is dominated by the big entity; B-cubed is gentler.
	s := reference.NewStore()
	var big []reference.ID
	for i := 0; i < 10; i++ {
		big = append(big, addPerson(s, "BIG"))
	}
	var parts [][]reference.ID
	parts = append(parts, big[:5], big[5:])
	for i := 0; i < 10; i++ {
		id := addPerson(s, "S"+string(rune('0'+i)))
		parts = append(parts, []reference.ID{id})
	}
	pair := Evaluate(s, schema.ClassPerson, parts)
	bc := BCubed(s, schema.ClassPerson, parts)
	if !(bc.Recall > pair.Recall) {
		t.Errorf("B-cubed recall %f should exceed pairwise %f here", bc.Recall, pair.Recall)
	}
}

func TestBCubedIgnoresUnlabeled(t *testing.T) {
	s := reference.NewStore()
	a := addPerson(s, "A")
	u := addPerson(s, "")
	rep := BCubed(s, schema.ClassPerson, [][]reference.ID{{a, u}})
	if rep.References != 1 || rep.Precision != 1 {
		t.Errorf("unlabeled leaked: %+v", rep)
	}
}

func TestBCubedEmpty(t *testing.T) {
	s := reference.NewStore()
	rep := BCubed(s, schema.ClassPerson, nil)
	if rep.Precision != 1 || rep.Recall != 1 {
		t.Errorf("empty = %+v", rep)
	}
}

func TestClusters(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	a2 := addPerson(s, "A")
	b := addPerson(s, "B")
	u := addPerson(s, "")
	st := Clusters(s, schema.ClassPerson, [][]reference.ID{{a1, a2}, {b}, {u}})
	if st.Clusters != 2 || st.References != 3 || st.Largest != 2 || st.Singletons != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.MeanSize-1.5) > 1e-9 {
		t.Errorf("mean = %f", st.MeanSize)
	}
}
