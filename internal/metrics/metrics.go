// Package metrics evaluates reconciliation output against a gold standard
// with the pairwise measures the paper reports: precision, recall,
// F-measure (§5.2), partition counts (Tables 4 and 5), and the number of
// real-world entities involved in false positives (Table 6).
//
// The pairwise formulation — recall is the fraction of same-entity
// reference pairs that were grouped together, precision the fraction of
// grouped pairs that are truly same-entity — inherently weights popular
// entities more heavily, which the paper argues is right for PIM.
package metrics

import (
	"fmt"

	"refrecon/internal/reference"
)

// Report holds the evaluation of one class's partitions.
type Report struct {
	Class      string
	Precision  float64
	Recall     float64
	F1         float64
	Partitions int // predicted partitions over labeled references
	Entities   int // distinct gold entities
	References int // labeled references evaluated
	// TruePairs / PredictedPairs / CorrectPairs are the raw pair counts.
	TruePairs      int
	PredictedPairs int
	CorrectPairs   int
	// EntitiesWithFalsePositives counts gold entities that appear in at
	// least one predicted partition together with a different entity
	// (the Table 6 error metric).
	EntitiesWithFalsePositives int
}

// String renders the report in the paper's Prec/Recall style.
func (r Report) String() string {
	return fmt.Sprintf("%s: %.3f/%.3f F=%.3f partitions=%d entities=%d",
		r.Class, r.Precision, r.Recall, r.F1, r.Partitions, r.Entities)
}

// Evaluate scores predicted partitions of one class against the gold
// entity labels carried by the references. References with an empty Entity
// label are excluded from the evaluation (they have no ground truth).
func Evaluate(store *reference.Store, class string, partitions [][]reference.ID) Report {
	rep := Report{Class: class}

	entityOf := func(id reference.ID) (string, bool) {
		r := store.Get(id)
		if r.Class != class || r.Entity == "" {
			return "", false
		}
		return r.Entity, true
	}

	// Gold pair count.
	goldSizes := make(map[string]int)
	for _, id := range store.ByClass(class) {
		if e, ok := entityOf(id); ok {
			goldSizes[e]++
			rep.References++
		}
	}
	rep.Entities = len(goldSizes)
	for _, n := range goldSizes {
		rep.TruePairs += n * (n - 1) / 2
	}

	// Predicted pair counts.
	badEntities := make(map[string]bool)
	for _, part := range partitions {
		byEntity := make(map[string]int)
		labeled := 0
		for _, id := range part {
			if e, ok := entityOf(id); ok {
				byEntity[e]++
				labeled++
			}
		}
		if labeled == 0 {
			continue
		}
		rep.Partitions++
		rep.PredictedPairs += labeled * (labeled - 1) / 2
		for e, n := range byEntity {
			rep.CorrectPairs += n * (n - 1) / 2
			if len(byEntity) > 1 {
				badEntities[e] = true
			}
		}
	}
	rep.EntitiesWithFalsePositives = len(badEntities)

	rep.Precision = ratio(rep.CorrectPairs, rep.PredictedPairs)
	rep.Recall = ratio(rep.CorrectPairs, rep.TruePairs)
	rep.F1 = FMeasure(rep.Precision, rep.Recall)
	return rep
}

// FMeasure is the harmonic mean of precision and recall.
func FMeasure(prec, rec float64) float64 {
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}

func ratio(num, den int) float64 {
	if den == 0 {
		// No pairs to get wrong: perfect by convention, matching the
		// usual record-linkage treatment of empty denominators.
		return 1
	}
	return float64(num) / float64(den)
}

// Average combines per-dataset reports of one class by macro-averaging
// precision and recall, as the paper does for Tables 2 and 3.
func Average(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	out := Report{Class: reports[0].Class}
	for _, r := range reports {
		out.Precision += r.Precision
		out.Recall += r.Recall
		out.Partitions += r.Partitions
		out.Entities += r.Entities
		out.References += r.References
		out.TruePairs += r.TruePairs
		out.PredictedPairs += r.PredictedPairs
		out.CorrectPairs += r.CorrectPairs
		out.EntitiesWithFalsePositives += r.EntitiesWithFalsePositives
	}
	n := float64(len(reports))
	out.Precision /= n
	out.Recall /= n
	out.F1 = FMeasure(out.Precision, out.Recall)
	return out
}

// ReductionPercent measures recall improvement as the paper's Table 5
// does: the percentage reduction in the gap between the number of result
// partitions and the number of real entities, going from a baseline
// partition count to an improved one.
func ReductionPercent(baselineParts, improvedParts, entities int) float64 {
	gapBase := baselineParts - entities
	gapImproved := improvedParts - entities
	if gapBase <= 0 {
		return 0
	}
	return 100 * float64(gapBase-gapImproved) / float64(gapBase)
}
