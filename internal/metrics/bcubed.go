package metrics

import (
	"refrecon/internal/reference"
)

// BCubedReport holds the B-cubed (Bagga & Baldwin) evaluation of one
// class's partitions: per-reference precision and recall averaged over all
// labeled references. Unlike the pairwise measure, B-cubed weights every
// reference equally instead of every pair, so huge entities do not
// dominate; reporting both views is standard practice in entity
// resolution.
type BCubedReport struct {
	Class      string
	Precision  float64
	Recall     float64
	F1         float64
	References int
}

// BCubed evaluates predicted partitions of one class under the B-cubed
// measure. References without gold labels are ignored.
func BCubed(store *reference.Store, class string, partitions [][]reference.ID) BCubedReport {
	rep := BCubedReport{Class: class}

	entityOf := func(id reference.ID) (string, bool) {
		r := store.Get(id)
		if r.Class != class || r.Entity == "" {
			return "", false
		}
		return r.Entity, true
	}

	goldSizes := make(map[string]int)
	for _, id := range store.ByClass(class) {
		if e, ok := entityOf(id); ok {
			goldSizes[e]++
		}
	}

	var sumP, sumR float64
	for _, part := range partitions {
		byEntity := make(map[string]int)
		labeled := 0
		for _, id := range part {
			if e, ok := entityOf(id); ok {
				byEntity[e]++
				labeled++
			}
		}
		if labeled == 0 {
			continue
		}
		for e, n := range byEntity {
			// Each of the n references of entity e in this cluster has
			// precision n/labeled and recall n/goldSizes[e].
			sumP += float64(n) * float64(n) / float64(labeled)
			sumR += float64(n) * float64(n) / float64(goldSizes[e])
			rep.References += n
		}
	}
	if rep.References > 0 {
		rep.Precision = sumP / float64(rep.References)
		rep.Recall = sumR / float64(rep.References)
	} else {
		rep.Precision, rep.Recall = 1, 1
	}
	rep.F1 = FMeasure(rep.Precision, rep.Recall)
	return rep
}

// ClusterStats summarizes the size distribution of a class's partitions
// over labeled references.
type ClusterStats struct {
	Clusters   int
	References int
	Largest    int
	Singletons int
	MeanSize   float64
}

// Clusters computes partition-size statistics for one class.
func Clusters(store *reference.Store, class string, partitions [][]reference.ID) ClusterStats {
	var st ClusterStats
	for _, part := range partitions {
		labeled := 0
		for _, id := range part {
			r := store.Get(id)
			if r.Class == class && r.Entity != "" {
				labeled++
			}
		}
		if labeled == 0 {
			continue
		}
		st.Clusters++
		st.References += labeled
		if labeled > st.Largest {
			st.Largest = labeled
		}
		if labeled == 1 {
			st.Singletons++
		}
	}
	if st.Clusters > 0 {
		st.MeanSize = float64(st.References) / float64(st.Clusters)
	}
	return st
}
