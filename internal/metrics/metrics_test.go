package metrics

import (
	"math"
	"testing"

	"refrecon/internal/reference"
	"refrecon/internal/schema"
)

func addPerson(s *reference.Store, entity string) reference.ID {
	r := reference.New(schema.ClassPerson)
	r.Entity = entity
	return s.Add(r)
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvaluatePerfect(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	a2 := addPerson(s, "A")
	b1 := addPerson(s, "B")
	rep := Evaluate(s, schema.ClassPerson, [][]reference.ID{{a1, a2}, {b1}})
	if rep.Precision != 1 || rep.Recall != 1 || rep.F1 != 1 {
		t.Errorf("perfect partitioning scored %+v", rep)
	}
	if rep.Partitions != 2 || rep.Entities != 2 || rep.References != 3 {
		t.Errorf("counts wrong: %+v", rep)
	}
	if rep.EntitiesWithFalsePositives != 0 {
		t.Errorf("false positives = %d", rep.EntitiesWithFalsePositives)
	}
}

func TestEvaluateUnderMerge(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	a2 := addPerson(s, "A")
	a3 := addPerson(s, "A")
	// All singletons: precision 1 (no predicted pairs), recall 0.
	rep := Evaluate(s, schema.ClassPerson, [][]reference.ID{{a1}, {a2}, {a3}})
	if rep.Precision != 1 || rep.Recall != 0 {
		t.Errorf("under-merge scored %+v", rep)
	}
	if rep.TruePairs != 3 || rep.PredictedPairs != 0 {
		t.Errorf("pair counts %+v", rep)
	}
}

func TestEvaluateOverMerge(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	a2 := addPerson(s, "A")
	b1 := addPerson(s, "B")
	// Everything lumped together: recall 1, precision 1/3.
	rep := Evaluate(s, schema.ClassPerson, [][]reference.ID{{a1, a2, b1}})
	if !approx(rep.Recall, 1) || !approx(rep.Precision, 1.0/3) {
		t.Errorf("over-merge scored %+v", rep)
	}
	if rep.EntitiesWithFalsePositives != 2 {
		t.Errorf("both entities touch a false positive: %+v", rep)
	}
}

func TestEvaluateIgnoresUnlabeled(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	unk := addPerson(s, "") // no gold label
	rep := Evaluate(s, schema.ClassPerson, [][]reference.ID{{a1, unk}})
	if rep.References != 1 || rep.PredictedPairs != 0 {
		t.Errorf("unlabeled reference leaked into evaluation: %+v", rep)
	}
}

func TestEvaluateIgnoresOtherClasses(t *testing.T) {
	s := reference.NewStore()
	a1 := addPerson(s, "A")
	v := reference.New(schema.ClassVenue)
	v.Entity = "V"
	vid := s.Add(v)
	rep := Evaluate(s, schema.ClassPerson, [][]reference.ID{{a1}, {vid}})
	if rep.References != 1 || rep.Partitions != 1 {
		t.Errorf("other-class reference counted: %+v", rep)
	}
}

func TestFMeasure(t *testing.T) {
	if FMeasure(0, 0) != 0 {
		t.Error("F(0,0) should be 0")
	}
	if !approx(FMeasure(1, 1), 1) {
		t.Error("F(1,1) should be 1")
	}
	if !approx(FMeasure(0.5, 1), 2.0/3) {
		t.Errorf("F(0.5,1) = %f", FMeasure(0.5, 1))
	}
}

func TestAverage(t *testing.T) {
	r1 := Report{Class: "Person", Precision: 1, Recall: 0.5, Partitions: 10}
	r2 := Report{Class: "Person", Precision: 0.5, Recall: 1, Partitions: 20}
	avg := Average([]Report{r1, r2})
	if !approx(avg.Precision, 0.75) || !approx(avg.Recall, 0.75) {
		t.Errorf("avg = %+v", avg)
	}
	if avg.Partitions != 30 {
		t.Errorf("partitions should sum: %d", avg.Partitions)
	}
	if got := Average(nil); got.Precision != 0 {
		t.Error("empty average should be zero value")
	}
}

func TestReductionPercent(t *testing.T) {
	// Paper's headline: 3159 -> 1873 partitions over 1750 entities = 91.3%.
	got := ReductionPercent(3159, 1873, 1750)
	if math.Abs(got-91.3) > 0.1 {
		t.Errorf("reduction = %.1f, want ~91.3", got)
	}
	if ReductionPercent(10, 5, 10) != 0 {
		t.Error("no gap means no reduction")
	}
}
