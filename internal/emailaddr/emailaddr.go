// Package emailaddr models email addresses for reference reconciliation.
//
// Email addresses act as near-keys for person references: two references
// sharing an address almost certainly denote the same person, and — per the
// paper's constraint 3 — one account on one server belongs to exactly one
// person. Beyond key equality, the *local part* of an address carries name
// evidence: "stonebraker@csail.mit.edu" supports merging with a reference
// named "Stonebraker, M." even though no attribute is shared verbatim. This
// package parses addresses and implements that cross-attribute comparison.
package emailaddr

import (
	"strings"

	"refrecon/internal/names"
	"refrecon/internal/strsim"
	"refrecon/internal/tokenizer"
)

// Address is a parsed email address. All fields are normalized lowercase.
type Address struct {
	Display string // optional display name ("Michael Stonebraker")
	Local   string // account name before '@' ("stonebraker")
	Domain  string // server after '@' ("csail.mit.edu")
}

// Parse interprets raw as one of the common header forms:
//
//	stonebraker@csail.mit.edu
//	<stonebraker@csail.mit.edu>
//	Michael Stonebraker <stonebraker@csail.mit.edu>
//	"Stonebraker, Michael" <stonebraker@csail.mit.edu>
//
// The second return value is false when no '@' could be located, in which
// case the whole input is preserved in Display.
func Parse(raw string) (Address, bool) {
	raw = strings.TrimSpace(raw)
	var a Address
	addrPart := raw
	if i := strings.LastIndexByte(raw, '<'); i >= 0 {
		j := strings.IndexByte(raw[i:], '>')
		if j > 0 {
			addrPart = raw[i+1 : i+j]
			a.Display = cleanDisplay(raw[:i])
		} else {
			addrPart = raw[i+1:]
			a.Display = cleanDisplay(raw[:i])
		}
	}
	at := strings.LastIndexByte(addrPart, '@')
	if at <= 0 || at == len(addrPart)-1 {
		a.Display = cleanDisplay(raw)
		return a, false
	}
	a.Local = tokenizer.Normalize(addrPart[:at])
	a.Domain = tokenizer.Normalize(addrPart[at+1:])
	a.Local = strings.ReplaceAll(a.Local, " ", "")
	a.Domain = strings.ReplaceAll(a.Domain, " ", "")
	// An account or server containing list or header syntax is not an
	// address: accepting it would let a Key() leak separators back into
	// rendered headers, where they re-parse as multiple mailboxes.
	if strings.ContainsAny(a.Local, ",;<>\"'@") || strings.ContainsAny(a.Domain, ",;<>\"'@") {
		a.Local, a.Domain = "", ""
		a.Display = cleanDisplay(raw)
		return a, false
	}
	return a, true
}

// cleanDisplay strips surrounding whitespace and quoting. The cutset form
// removes any mix of quotes and spaces in one pass, so cleaning is
// idempotent — display names survive a render/parse round trip unchanged.
func cleanDisplay(s string) string {
	return strings.Trim(s, "\"' \t\r\n")
}

// Key returns the canonical account key "local@domain", the identity the
// reconciler treats as a merge key. Empty when the address is empty.
func (a Address) Key() string {
	if a.Local == "" || a.Domain == "" {
		return ""
	}
	return a.Local + "@" + a.Domain
}

// Server returns the registrable server identity used by constraint 3
// ("a person has a unique account on an email server"). Subdomains are
// collapsed to the last two labels so that csail.mit.edu and mit.edu count
// as the same server.
func (a Address) Server() string {
	if a.Domain == "" {
		return ""
	}
	labels := strings.Split(a.Domain, ".")
	if len(labels) <= 2 {
		return a.Domain
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// IsZero reports whether no address component was parsed.
func (a Address) IsZero() bool { return a.Local == "" && a.Domain == "" }

// String renders the address; it includes the display name when present.
func (a Address) String() string {
	k := a.Key()
	if a.Display == "" {
		return k
	}
	if k == "" {
		return a.Display
	}
	return a.Display + " <" + k + ">"
}

// LocalTokens decomposes the local part into name-like tokens, splitting on
// separators and digit runs: "m.stonebraker42" yields ["m","stonebraker"].
func (a Address) LocalTokens() []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range a.Local {
		if r >= 'a' && r <= 'z' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Sim scores two addresses in [0,1]. Equal keys score 1. Same local part on
// different servers is strong evidence (people keep account names across
// providers); same server with similar local parts is moderate evidence.
// Every local part is treated as fully identifying; use SimRarity when
// population statistics are available.
func Sim(x, y Address) float64 {
	return SimRarity(x, y, nil)
}

// LocalRarityFunc weighs how identifying an account name is, in [0,1]:
// "stonebraker" is nearly unique, "cynthia" is shared by every Cynthia.
type LocalRarityFunc func(local string) float64

// SimRarity is Sim with rarity weighting of the same-local-different-server
// evidence (nil means rarity 1).
func SimRarity(x, y Address, rarity LocalRarityFunc) float64 {
	if x.IsZero() && y.IsZero() {
		return 1
	}
	if x.IsZero() || y.IsZero() {
		return 0
	}
	if x.Key() == y.Key() {
		return 1
	}
	localSim := strsim.JaroWinkler(x.Local, y.Local)
	switch {
	case x.Local == y.Local:
		r := 1.0
		if rarity != nil {
			r = rarity(x.Local)
		}
		return 0.55 + 0.3*r // same account name, different server
	case x.Server() == y.Server():
		// Same server, different accounts: constraint 3 territory. The
		// similarity itself stays low; the constraint logic handles the
		// hard negative.
		return 0.3 * localSim
	default:
		return 0.6 * localSim
	}
}

// RarityFunc weighs how identifying a (first-initial, surname) combination
// is, in [0,1]: 1 means unique in the population ("stonebraker"), small
// values mean common ("li"). initial is empty when only the surname is
// being judged. Comparators use it to keep surname-only account matches
// from gluing together everyone sharing a common family name.
type RarityFunc func(initial, surname string) float64

// NameSim scores a person name string against an address in [0,1],
// implementing the paper's name-vs-email evidence: the local part is
// matched against the parsed name's components. "Stonebraker, M." vs
// "stonebraker@csail.mit.edu" scores high because the local part equals the
// surname; "mike" vs the same address scores low. Every surname is treated
// as fully identifying; use NameSimRarity when population statistics are
// available.
func NameSim(rawName string, a Address) float64 {
	return NameSimRarity(rawName, a, nil)
}

// NameSimRarity is NameSim with rarity weighting (nil means rarity 1).
func NameSimRarity(rawName string, a Address, rarity RarityFunc) float64 {
	if rarity == nil {
		rarity = func(string, string) float64 { return 1 }
	}
	return nameSim(rawName, a, rarity)
}

func nameSim(rawName string, a Address, rarity RarityFunc) float64 {
	if a.IsZero() {
		return 0
	}
	n := names.Parse(rawName)
	if n.IsEmpty() {
		return 0
	}
	toks := a.LocalTokens()
	if len(toks) == 0 {
		return 0
	}
	last := strings.ReplaceAll(n.Last, " ", "")
	first := n.First
	firstFull := first != "" && len(first) > 1
	best := 0.0
	upd := func(s float64) {
		if s > best {
			best = s
		}
	}

	// Multi-token local parts ("michael.stonebraker"): the surname token
	// must agree AND the given token must not contradict. A local part
	// that spells out a *different* given name ("ling.yuan" against
	// "Ming Yuan", or against the initial in "Yuan, M.") is decisive
	// negative evidence, not weak positive evidence.
	if len(toks) >= 2 && last != "" {
		lastParts := strings.Fields(n.Last)
		covered := make([]bool, len(toks))
		partsMatched := 0
		for _, lp := range lastParts {
			for j, u := range toks {
				if covered[j] {
					continue
				}
				if u == lp || (len(u) > 3 && strsim.JaroWinkler(u, lp) >= 0.95) {
					covered[j] = true
					partsMatched++
					break
				}
			}
		}
		if partsMatched < len(lastParts) {
			// Multi-part surnames may also appear fused ("garciamolina").
			for j, u := range toks {
				if !covered[j] && (u == last || (len(u) > 3 && strsim.JaroWinkler(u, last) >= 0.95)) {
					covered[j] = true
					partsMatched = len(lastParts)
					break
				}
			}
		}
		if partsMatched == len(lastParts) {
			agree, contradict, extraSurname := false, false, false
			for j, u := range toks {
				if covered[j] {
					continue
				}
				if first == "" {
					// No given name to check against: a long extra token
					// is an unexplained name part.
					if len(u) >= 4 {
						extraSurname = true
					}
					continue
				}
				switch {
				case u == first,
					len(u) == 1 && u[0] == first[0],
					len(u) > 1 && !firstFull && u[0] == first[0],
					names.Formal(u) == names.Formal(first):
					agree = true
				case len(u) == 1 && u[0] != first[0]:
					contradict = true
				case len(u) > 1 && !firstFull && u[0] != first[0]:
					contradict = true
				case len(u) > 1 && firstFull && strsim.JaroWinkler(u, first) < 0.90:
					if strsim.JaroWinkler(u, first) >= 0.6 || len(u) < 4 {
						// Shaped like a competing given name ("ling" vs
						// "ming"): decisive negative evidence.
						contradict = true
					} else {
						// A long token matching neither the given name
						// nor any surname part ("gonzalez" against "Andy
						// Henderson") is an unexplained extra name part:
						// weaker than a contradiction, but it blocks the
						// full-agreement score.
						extraSurname = true
					}
				}
			}
			switch {
			case contradict:
				return 0.3
			case agree && !extraSurname:
				return 1
			case agree:
				return 0.7
			default:
				// Surname matched, given name unknown: the structured
				// verdict caps anything the per-token heuristics below
				// would add.
				return 0.55 + 0.3*rarity("", last)
			}
		}
	}

	for _, t := range toks {
		// Bare surname as the account name ("stonebraker@..."): strong
		// evidence exactly to the extent the surname is identifying.
		if last != "" && (t == last || (len(t) > 3 && strsim.JaroWinkler(t, last) >= 0.95)) {
			upd(0.55 + 0.35*rarity("", last))
		}
		// Full given name as the account name ("eugene@..."): given names
		// repeat across people, so this is moderate evidence only —
		// never enough to cross a merge gate by itself.
		if firstFull && (t == first || names.Formal(t) == names.Formal(first)) {
			upd(0.6)
		}
		// Initial+surname fusions ("mstonebraker", "stonebrakerm"):
		// equivalent information to the citation form "Stonebraker, M.".
		if last != "" && first != "" {
			ini := string(first[0])
			for _, f := range [3]string{ini + last, last + ini, first + last} {
				exact := t == f
				near := !exact && len(t) > 4 && strsim.JaroWinkler(t, f) >= 0.96
				if !exact && !near {
					continue
				}
				s := 0.75 + 0.25*rarity(ini, last)
				if f == first+last && firstFull {
					s = 1 // full given name + surname fused: identifying
				}
				if near {
					s -= 0.1
				}
				upd(s)
			}
		}
		// Typo-tolerant fallback against surname and given name.
		if last != "" {
			if s := strsim.JaroWinkler(t, last); s >= 0.93 {
				upd((0.5 + 0.35*rarity("", last)) * s)
			} else {
				upd(0.4 * s)
			}
		}
		if firstFull {
			upd(0.4 * strsim.JaroWinkler(t, first))
		}
	}
	return best
}
