package emailaddr

import (
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		display string
		local   string
		domain  string
		ok      bool
	}{
		{"stonebraker@csail.mit.edu", "", "stonebraker", "csail.mit.edu", true},
		{"<eugene@berkeley.edu>", "", "eugene", "berkeley.edu", true},
		{"Michael Stonebraker <stonebraker@csail.mit.edu>", "Michael Stonebraker", "stonebraker", "csail.mit.edu", true},
		{`"Stonebraker, Michael" <stonebraker@mit.edu>`, "Stonebraker, Michael", "stonebraker", "mit.edu", true},
		{"UPPER@CASE.EDU", "", "upper", "case.edu", true},
		{"not an address", "not an address", "", "", false},
		{"", "", "", "", false},
		{"@nodomain", "@nodomain", "", "", false},
		{"nolocal@", "nolocal@", "", "", false},
	}
	for _, c := range cases {
		a, ok := Parse(c.in)
		if ok != c.ok || a.Display != c.display || a.Local != c.local || a.Domain != c.domain {
			t.Errorf("Parse(%q) = %+v ok=%v, want display=%q local=%q domain=%q ok=%v",
				c.in, a, ok, c.display, c.local, c.domain, c.ok)
		}
	}
}

func TestKeyAndServer(t *testing.T) {
	a, _ := Parse("stonebraker@csail.mit.edu")
	if a.Key() != "stonebraker@csail.mit.edu" {
		t.Errorf("Key = %q", a.Key())
	}
	if a.Server() != "mit.edu" {
		t.Errorf("Server = %q", a.Server())
	}
	b, _ := Parse("x@mit.edu")
	if b.Server() != "mit.edu" {
		t.Errorf("two-label Server = %q", b.Server())
	}
	var zero Address
	if zero.Key() != "" || zero.Server() != "" || !zero.IsZero() {
		t.Error("zero address should have empty key/server")
	}
}

func TestString(t *testing.T) {
	a, _ := Parse("Eugene Wong <eugene@berkeley.edu>")
	if a.String() != "Eugene Wong <eugene@berkeley.edu>" {
		t.Errorf("String = %q", a.String())
	}
	b, _ := Parse("eugene@berkeley.edu")
	if b.String() != "eugene@berkeley.edu" {
		t.Errorf("String = %q", b.String())
	}
}

func TestLocalTokens(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"m.stonebraker42@x.edu", []string{"m", "stonebraker"}},
		{"eugene_wong@x.edu", []string{"eugene", "wong"}},
		{"jdoe@x.edu", []string{"jdoe"}},
		{"123@x.edu", nil},
	}
	for _, c := range cases {
		a, _ := Parse(c.in)
		got := a.LocalTokens()
		if len(got) != len(c.want) {
			t.Errorf("LocalTokens(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("LocalTokens(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func mustParse(t *testing.T, s string) Address {
	t.Helper()
	a, ok := Parse(s)
	if !ok {
		t.Fatalf("Parse(%q) failed", s)
	}
	return a
}

func TestSim(t *testing.T) {
	same := mustParse(t, "stonebraker@csail.mit.edu")
	if Sim(same, same) != 1 {
		t.Error("identical keys should score 1")
	}
	// Same local, different server: strong.
	a := mustParse(t, "stonebraker@csail.mit.edu")
	b := mustParse(t, "stonebraker@berkeley.edu")
	if s := Sim(a, b); s < 0.8 {
		t.Errorf("same local different server = %f, want >= 0.8", s)
	}
	// Same server, different accounts: weak.
	c := mustParse(t, "wong@csail.mit.edu")
	if s := Sim(a, c); s > 0.3 {
		t.Errorf("same server different local = %f, want <= 0.3", s)
	}
	var zero Address
	if Sim(zero, zero) != 1 || Sim(zero, a) != 0 {
		t.Error("zero-address handling wrong")
	}
}

func TestSimSymmetricBounded(t *testing.T) {
	f := func(x, y string) bool {
		a, _ := Parse(x)
		b, _ := Parse(y)
		s1, s2 := Sim(a, b), Sim(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNameSim(t *testing.T) {
	addr := mustParse(t, "stonebraker@csail.mit.edu")
	cases := []struct {
		name string
		min  float64
		max  float64
	}{
		{"Stonebraker, M.", 0.85, 1},     // the paper's flagship example
		{"Michael Stonebraker", 0.85, 1}, // full name, surname local part
		{"mike", 0, 0.35},                // nickname alone: weak
		{"Jennifer Widom", 0, 0.45},      // unrelated
		{"", 0, 0},
	}
	for _, c := range cases {
		got := NameSim(c.name, addr)
		if got < c.min || got > c.max {
			t.Errorf("NameSim(%q, stonebraker@...) = %f, want in [%f,%f]", c.name, got, c.min, c.max)
		}
	}
}

func TestNameSimDottedLocal(t *testing.T) {
	addr := mustParse(t, "michael.stonebraker@mit.edu")
	if s := NameSim("Stonebraker, M.", addr); s < 0.9 {
		t.Errorf("dotted local vs abbreviated name = %f, want >= 0.9", s)
	}
	if s := NameSim("Michael Stonebraker", addr); s != 1 {
		t.Errorf("dotted local vs full name = %f, want 1", s)
	}
}

func TestNameSimFusedLocal(t *testing.T) {
	addr := mustParse(t, "mstonebraker@mit.edu")
	if s := NameSim("Michael Stonebraker", addr); s != 1 {
		t.Errorf("fused initial+surname = %f, want 1", s)
	}
}

func TestNameSimContradictions(t *testing.T) {
	cases := []struct {
		name, addr string
		max        float64
		why        string
	}{
		{"Ming Yuan", "ling.yuan@gmail.com", 0.35, "competing given name"},
		{"Yuan, M.", "ling.yuan@gmail.com", 0.35, "competing initial"},
		{"Ming Yuan", "l.yuan@gmail.com", 0.35, "competing single initial"},
	}
	for _, c := range cases {
		a := mustParse(t, c.addr)
		if got := NameSim(c.name, a); got > c.max {
			t.Errorf("NameSim(%q, %s) = %f, want <= %f (%s)", c.name, c.addr, got, c.max, c.why)
		}
	}
}

func TestNameSimExtraSurnamePart(t *testing.T) {
	// The local spells a double surname the reference lacks: agreement is
	// blocked from reaching the full score but is not a contradiction.
	a := mustParse(t, "andrew.henderson-gonzalez@csail.mit.edu")
	got := NameSim("Andy Henderson", a)
	if got > 0.75 {
		t.Errorf("extra surname part should cap the score: %f", got)
	}
	if got < 0.4 {
		t.Errorf("agreement with extra part is not a contradiction: %f", got)
	}
	// The matching double-surname reference still scores 1.
	if got := NameSim("Andrew Henderson-Gonzalez", a); got != 1 {
		t.Errorf("full double-surname match = %f, want 1", got)
	}
}

func TestNameSimRarityWeighting(t *testing.T) {
	addr := mustParse(t, "yuan@gmail.com")
	common := NameSimRarity("Ming Yuan", addr, func(initial, surname string) float64 { return 0.2 })
	rare := NameSimRarity("Ming Yuan", addr, func(initial, surname string) float64 { return 1.0 })
	if !(rare > common) {
		t.Errorf("rarity must scale surname-only evidence: rare %f vs common %f", rare, common)
	}
	if common > 0.7 {
		t.Errorf("common surname local = %f, want <= 0.7", common)
	}
}

func TestNameSimBounded(t *testing.T) {
	f := func(name, addr string) bool {
		a, _ := Parse(addr)
		s := NameSim(name, a)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestParseRejectsSeparatorAddresses pins the FuzzEmail-driven hardening:
// an "address" whose local or domain carries list/header syntax must fail
// to parse instead of leaking the separator through Key() into rendered
// headers.
func TestParseRejectsSeparatorAddresses(t *testing.T) {
	for _, raw := range []string{
		"0@0,0", "a,b@c", "x@d;e", `q"u@dom`, "a@b@c",
	} {
		a, ok := Parse(raw)
		if ok {
			t.Errorf("Parse(%q) ok with key %q, want rejection", raw, a.Key())
		}
		if a.Key() != "" {
			t.Errorf("Parse(%q) produced key %q after rejection", raw, a.Key())
		}
	}
}

// TestCleanDisplayIdempotent: display cleaning must reach a fixed point in
// one pass (mixed quote/space shells peeled one layer per parse made
// render/parse oscillate).
func TestCleanDisplayIdempotent(t *testing.T) {
	for _, raw := range []string{`"'  x  '"`, "' a '", `" b '`, "c"} {
		once := cleanDisplay(raw)
		if twice := cleanDisplay(once); once != twice {
			t.Errorf("cleanDisplay(%q): %q then %q", raw, once, twice)
		}
	}
}
